package replica

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

func testConfig(numNodes int) core.Config {
	return core.Config{
		NumNodes: numNodes, EdgeDim: 16,
		Slots: 4, Neighbors: 4, Hops: 2, Heads: 2, Hidden: 32,
		BatchSize: 20, LR: 0.001, Seed: 1,
		GraphBackend: core.GraphBackendSharded, Shards: 8,
	}
}

func testEvents(t *testing.T) []tgraph.Event {
	t.Helper()
	d := dataset.Wikipedia(dataset.Config{Scale: 0.01, Seed: 7, NoDrift: true})
	for i := range d.Events {
		d.Events[i].Feat = d.Events[i].Feat[:16]
	}
	return d.Events
}

func newModel(t *testing.T, numNodes int) *core.Model {
	t.Helper()
	m, err := core.New(testConfig(numNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	return m
}

// leaderAndShippedDir builds a leader with an attached WAL, applies the
// given batches, then crashes it (DetachWAL + Abandon) and returns the log
// directory — which doubles as the "shipped" directory, since a DirDest
// ship produces byte-identical files.
func applyBatches(t *testing.T, m *core.Model, events []tgraph.Event, batch int) {
	t.Helper()
	for i := 0; i < len(events); i += batch {
		end := i + batch
		if end > len(events) {
			end = len(events)
		}
		inf := m.InferBatch(events[i:end])
		m.ApplyInference(inf)
		inf.Release()
	}
}

func TestFollowerReplaysAndPromotes(t *testing.T) {
	events := testEvents(t)
	n := 400
	if len(events) < n {
		t.Fatalf("dataset too small: %d", len(events))
	}
	events = events[:n]
	numNodes := 0
	for _, e := range events {
		if int(e.Src) >= numNodes {
			numNodes = int(e.Src) + 1
		}
		if int(e.Dst) >= numNodes {
			numNodes = int(e.Dst) + 1
		}
	}

	dirA := t.TempDir()
	walOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 4096}

	leader := newModel(t, numNodes)
	log, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	applyBatches(t, leader, events, 25)
	wantDigest := leader.RuntimeDigest()
	leader.DetachWAL().Abandon()

	// Ship the whole log (tail mode: the live segment too) to the follower.
	dirB := t.TempDir()
	shipper := wal.NewShipper(dirA, wal.DirDest{Dir: dirB}, wal.ShipOptions{Tail: true})
	if _, err := shipper.ShipNow(); err != nil {
		t.Fatal(err)
	}

	follower := newModel(t, numNodes)
	rep, err := NewFollower(follower, dirB, Options{WAL: walOpts})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Role(); got != "follower" {
		t.Fatalf("role = %q, want follower", got)
	}
	applied, err := rep.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if applied != n {
		t.Fatalf("replayed %d events, want %d", applied, n)
	}
	if got := follower.RuntimeDigest(); got != wantDigest {
		t.Fatalf("follower digest %x != leader %x", got, wantDigest)
	}

	// Lag accounting: heartbeat says the leader logged 30 more events.
	if rep.LagEvents() != 0 {
		t.Fatalf("lag before any heartbeat = %d, want 0", rep.LagEvents())
	}
	rep.ObserveLeaderIndex(uint64(n + 30))
	if got := rep.LagEvents(); got != 30 {
		t.Fatalf("lag = %d, want 30", got)
	}

	// Promote: follower becomes a writable leader at the same watermark.
	if err := rep.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := rep.Role(); got != "leader" {
		t.Fatalf("role after promote = %q, want leader", got)
	}
	if got := follower.RuntimeDigest(); got != wantDigest {
		t.Fatalf("digest changed across promotion: %x != %x", got, wantDigest)
	}
	if rep.Cursor() != uint64(n) {
		t.Fatalf("cursor after promote = %d, want %d", rep.Cursor(), n)
	}

	// Fencing: second promote refuses, polling refuses.
	if err := rep.Promote(); !errors.Is(err, ErrAlreadyPromoted) {
		t.Fatalf("second Promote = %v, want ErrAlreadyPromoted", err)
	}
	if _, err := rep.PollOnce(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("PollOnce after promote = %v, want ErrPromoted", err)
	}

	// The promoted leader logs new applies durably.
	extra := testEvents(t)[n : n+20]
	applyBatches(t, follower, extra, 20)
	endDigest := follower.RuntimeDigest()
	follower.DetachWAL().Abandon()

	recovered := newModel(t, numNodes)
	rlog, err := wal.Open(wal.Options{Dir: dirB, Policy: wal.SyncGroup, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	if _, err := recovered.RecoverWAL(rlog); err != nil {
		t.Fatal(err)
	}
	if got := recovered.RuntimeDigest(); got != endDigest {
		t.Fatalf("recovered digest %x != promoted leader %x", got, endDigest)
	}
}

// TestFollowerIncrementalPolls: records shipped in pieces are applied
// exactly once, in order, across many polls — including a torn tail that
// parks and later completes.
func TestFollowerIncrementalPolls(t *testing.T) {
	events := testEvents(t)[:200]
	numNodes := 0
	for _, e := range events {
		if int(e.Src) >= numNodes {
			numNodes = int(e.Src) + 1
		}
		if int(e.Dst) >= numNodes {
			numNodes = int(e.Dst) + 1
		}
	}

	dirA := t.TempDir()
	walOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 2048}
	leader := newModel(t, numNodes)
	log, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}

	dirB := t.TempDir()
	shipper := wal.NewShipper(dirA, wal.DirDest{Dir: dirB}, wal.ShipOptions{Tail: true})
	follower := newModel(t, numNodes)
	rep, err := NewFollower(follower, dirB, Options{WAL: walOpts})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for i := 0; i < len(events); i += 20 {
		applyBatches(t, leader, events[i:i+20], 20)
		if _, err := shipper.ShipNow(); err != nil {
			t.Fatal(err)
		}
		applied, err := rep.PollOnce()
		if err != nil {
			t.Fatal(err)
		}
		total += applied
	}
	if total != len(events) {
		t.Fatalf("applied %d events across polls, want %d", total, len(events))
	}
	if got, want := follower.RuntimeDigest(), leader.RuntimeDigest(); got != want {
		t.Fatalf("follower digest %x != leader %x", got, want)
	}
	leader.DetachWAL().Close()
}

// dirSnapshot maps every file name in dir to its content bytes.
func dirSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := make(map[string]string, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = string(b)
	}
	return snap
}

// TestShipDestFencedByPromotion: chunks routed through Replica.ShipDest
// land on disk while following, and are refused — directory bytes
// untouched — the moment the replica is promoted. This is the on-disk
// fence: a still-alive ex-leader whose stream keeps running cannot
// overwrite WAL frames the promoted leader appends at the same offsets.
func TestShipDestFencedByPromotion(t *testing.T) {
	events := testEvents(t)[:80]
	numNodes := 0
	for _, e := range events {
		if int(e.Src) >= numNodes {
			numNodes = int(e.Src) + 1
		}
		if int(e.Dst) >= numNodes {
			numNodes = int(e.Dst) + 1
		}
	}

	dirA := t.TempDir()
	walOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 2048}
	leader := newModel(t, numNodes)
	llog, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(llog); err != nil {
		t.Fatal(err)
	}
	applyBatches(t, leader, events[:60], 20)

	dirB := t.TempDir()
	follower := newModel(t, numNodes)
	rep, err := NewFollower(follower, dirB, Options{WAL: walOpts})
	if err != nil {
		t.Fatal(err)
	}

	// The ship stream writes through the fenced dest, not a raw DirDest.
	shipper := wal.NewShipper(dirA, rep.ShipDest(), wal.ShipOptions{Tail: true})
	if _, err := shipper.ShipNow(); err != nil {
		t.Fatal(err)
	}
	if applied, err := rep.PollOnce(); err != nil || applied != 60 {
		t.Fatalf("PollOnce = (%d, %v), want (60, nil)", applied, err)
	}

	var hookRole string
	var hookLog *wal.Log
	hookRan := false
	rep.SetFenceHook(func() {
		// The hook fires before the directory is reopened for appends:
		// still mid-promotion, no log attached yet.
		hookRan, hookRole, hookLog = true, rep.Role(), rep.Log()
	})
	if err := rep.Promote(); err != nil {
		t.Fatal(err)
	}
	if !hookRan {
		t.Fatal("fence hook did not run during Promote")
	}
	if hookRole != "follower" || hookLog != nil {
		t.Fatalf("fence hook observed role %q log %v — ran after promotion completed", hookRole, hookLog)
	}

	// The ex-leader is still alive: it appends and ships more. Every
	// chunk must be refused and not a byte of dirB may change.
	applyBatches(t, leader, events[60:80], 20)
	before := dirSnapshot(t, dirB)
	if _, err := shipper.ShipNow(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("post-promotion ship error = %v, want ErrPromoted", err)
	}
	after := dirSnapshot(t, dirB)
	if len(before) != len(after) {
		t.Fatalf("shipped file count changed across fenced ship: %d -> %d", len(before), len(after))
	}
	for name, b := range before {
		if after[name] != b {
			t.Fatalf("fenced ship mutated %s (%d -> %d bytes)", name, len(b), len(after[name]))
		}
	}
	leader.DetachWAL().Abandon()

	// The promoted leader's log is intact: its own appends recover.
	extra := testEvents(t)[60:70]
	applyBatches(t, follower, extra, 10)
	endDigest := follower.RuntimeDigest()
	follower.DetachWAL().Abandon()
	recovered := newModel(t, numNodes)
	rlog, err := wal.Open(wal.Options{Dir: dirB, Policy: wal.SyncGroup, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	if _, err := recovered.RecoverWAL(rlog); err != nil {
		t.Fatal(err)
	}
	if got := recovered.RuntimeDigest(); got != endDigest {
		t.Fatalf("recovered digest %x != promoted leader %x", got, endDigest)
	}
}

// TestFailedPromotionLiftsFence: a Promote that cannot catch up (here: the
// shipped log starts past the follower's watermark) leaves a functioning
// follower — chunk writes resume, the role stays "follower". Safe because
// the fence hook severed the connection, and a reconnecting leader
// re-ships every segment from byte zero.
func TestFailedPromotionLiftsFence(t *testing.T) {
	events := testEvents(t)[:60]
	numNodes := 0
	for _, e := range events {
		if int(e.Src) >= numNodes {
			numNodes = int(e.Src) + 1
		}
		if int(e.Dst) >= numNodes {
			numNodes = int(e.Dst) + 1
		}
	}

	dirA := t.TempDir()
	walOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 512}
	leader := newModel(t, numNodes)
	llog, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(llog); err != nil {
		t.Fatal(err)
	}
	applyBatches(t, leader, events, 4)
	// Drop the log's head so the shipped copy starts past watermark 0.
	if removed, err := llog.TruncateBefore(20); err != nil || removed == 0 {
		t.Fatalf("TruncateBefore = (%d, %v), want segments dropped", removed, err)
	}
	leader.DetachWAL().Abandon()

	dirB := t.TempDir()
	follower := newModel(t, numNodes) // fresh: watermark 0, cannot reach index 20
	rep, err := NewFollower(follower, dirB, Options{WAL: walOpts})
	if err != nil {
		t.Fatal(err)
	}
	shipper := wal.NewShipper(dirA, rep.ShipDest(), wal.ShipOptions{Tail: true})
	if _, err := shipper.ShipNow(); err != nil {
		t.Fatal(err)
	}

	if err := rep.Promote(); err == nil {
		t.Fatal("Promote succeeded across a log gap")
	}
	if got := rep.Role(); got != "follower" {
		t.Fatalf("role after failed promotion = %q, want follower", got)
	}
	// The fence is lifted: a (re)connecting leader's re-ship lands again.
	before := dirSnapshot(t, dirB)
	reship := wal.NewShipper(dirA, rep.ShipDest(), wal.ShipOptions{Tail: true})
	if _, err := reship.ShipNow(); err != nil {
		t.Fatalf("re-ship after failed promotion: %v", err)
	}
	if after := dirSnapshot(t, dirB); len(after) != len(before) {
		t.Fatalf("re-ship after failed promotion wrote nothing: %d files before, %d after", len(before), len(after))
	}
}

// TestPromotionFenceRace: a ship stream writing chunks full-tilt while
// Promote runs never lands a byte after the fence, and role/cursor/lag
// reads stay lock-free throughout (meaningful under -race).
func TestPromotionFenceRace(t *testing.T) {
	events := testEvents(t)[:60]
	numNodes := 0
	for _, e := range events {
		if int(e.Src) >= numNodes {
			numNodes = int(e.Src) + 1
		}
		if int(e.Dst) >= numNodes {
			numNodes = int(e.Dst) + 1
		}
	}

	dirA := t.TempDir()
	walOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 4096}
	leader := newModel(t, numNodes)
	llog, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(llog); err != nil {
		t.Fatal(err)
	}
	applyBatches(t, leader, events, 20)
	leader.DetachWAL().Abandon()

	dirB := t.TempDir()
	follower := newModel(t, numNodes)
	rep, err := NewFollower(follower, dirB, Options{WAL: walOpts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.NewShipper(dirA, rep.ShipDest(), wal.ShipOptions{Tail: true}).ShipNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// One idempotent chunk the "stream" re-writes over and over: the
	// first segment's own bytes at offset 0.
	segs, err := os.ReadDir(dirB)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no shipped segments: %v", err)
	}
	segName := segs[0].Name()
	segBytes, err := os.ReadFile(filepath.Join(dirB, segName))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		dest := rep.ShipDest()
		for {
			if err := dest.WriteChunk(segName, 0, segBytes); err != nil {
				writerDone <- err
				return
			}
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
		}
	}()
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			_ = rep.Role()
			_ = rep.Cursor()
			_ = rep.LagEvents()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	if err := rep.Promote(); err != nil {
		t.Fatal(err)
	}
	// The writer must die on ErrPromoted by itself — the fence, not the
	// stop channel, is what ends the stream.
	if err := <-writerDone; !errors.Is(err, ErrPromoted) {
		t.Fatalf("racing writer ended with %v, want ErrPromoted", err)
	}
	close(stop)
	<-readerDone
	if got := rep.Role(); got != "leader" {
		t.Fatalf("role = %q after promotion", got)
	}
	rep.Log().Abandon()
	follower.DetachWAL()
}

func TestNewFollowerRejectsAttachedWAL(t *testing.T) {
	dir := t.TempDir()
	m := newModel(t, 8)
	log, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := m.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFollower(m, dir, Options{}); err == nil {
		t.Fatal("NewFollower accepted a model with a WAL attached")
	}
}
