package replica

import (
	"errors"
	"path/filepath"
	"testing"

	"apan/internal/core"
	"apan/internal/dataset"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

func testConfig(numNodes int) core.Config {
	return core.Config{
		NumNodes: numNodes, EdgeDim: 16,
		Slots: 4, Neighbors: 4, Hops: 2, Heads: 2, Hidden: 32,
		BatchSize: 20, LR: 0.001, Seed: 1,
		GraphBackend: core.GraphBackendSharded, Shards: 8,
	}
}

func testEvents(t *testing.T) []tgraph.Event {
	t.Helper()
	d := dataset.Wikipedia(dataset.Config{Scale: 0.01, Seed: 7, NoDrift: true})
	for i := range d.Events {
		d.Events[i].Feat = d.Events[i].Feat[:16]
	}
	return d.Events
}

func newModel(t *testing.T, numNodes int) *core.Model {
	t.Helper()
	m, err := core.New(testConfig(numNodes))
	if err != nil {
		t.Fatal(err)
	}
	m.ResetRuntime()
	return m
}

// leaderAndShippedDir builds a leader with an attached WAL, applies the
// given batches, then crashes it (DetachWAL + Abandon) and returns the log
// directory — which doubles as the "shipped" directory, since a DirDest
// ship produces byte-identical files.
func applyBatches(t *testing.T, m *core.Model, events []tgraph.Event, batch int) {
	t.Helper()
	for i := 0; i < len(events); i += batch {
		end := i + batch
		if end > len(events) {
			end = len(events)
		}
		inf := m.InferBatch(events[i:end])
		m.ApplyInference(inf)
		inf.Release()
	}
}

func TestFollowerReplaysAndPromotes(t *testing.T) {
	events := testEvents(t)
	n := 400
	if len(events) < n {
		t.Fatalf("dataset too small: %d", len(events))
	}
	events = events[:n]
	numNodes := 0
	for _, e := range events {
		if int(e.Src) >= numNodes {
			numNodes = int(e.Src) + 1
		}
		if int(e.Dst) >= numNodes {
			numNodes = int(e.Dst) + 1
		}
	}

	dirA := t.TempDir()
	walOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 4096}

	leader := newModel(t, numNodes)
	log, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	applyBatches(t, leader, events, 25)
	wantDigest := leader.RuntimeDigest()
	leader.DetachWAL().Abandon()

	// Ship the whole log (tail mode: the live segment too) to the follower.
	dirB := t.TempDir()
	shipper := wal.NewShipper(dirA, wal.DirDest{Dir: dirB}, wal.ShipOptions{Tail: true})
	if _, err := shipper.ShipNow(); err != nil {
		t.Fatal(err)
	}

	follower := newModel(t, numNodes)
	rep, err := NewFollower(follower, dirB, Options{WAL: walOpts})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Role(); got != "follower" {
		t.Fatalf("role = %q, want follower", got)
	}
	applied, err := rep.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if applied != n {
		t.Fatalf("replayed %d events, want %d", applied, n)
	}
	if got := follower.RuntimeDigest(); got != wantDigest {
		t.Fatalf("follower digest %x != leader %x", got, wantDigest)
	}

	// Lag accounting: heartbeat says the leader logged 30 more events.
	if rep.LagEvents() != 0 {
		t.Fatalf("lag before any heartbeat = %d, want 0", rep.LagEvents())
	}
	rep.ObserveLeaderIndex(uint64(n + 30))
	if got := rep.LagEvents(); got != 30 {
		t.Fatalf("lag = %d, want 30", got)
	}

	// Promote: follower becomes a writable leader at the same watermark.
	if err := rep.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := rep.Role(); got != "leader" {
		t.Fatalf("role after promote = %q, want leader", got)
	}
	if got := follower.RuntimeDigest(); got != wantDigest {
		t.Fatalf("digest changed across promotion: %x != %x", got, wantDigest)
	}
	if rep.Cursor() != uint64(n) {
		t.Fatalf("cursor after promote = %d, want %d", rep.Cursor(), n)
	}

	// Fencing: second promote refuses, polling refuses.
	if err := rep.Promote(); !errors.Is(err, ErrAlreadyPromoted) {
		t.Fatalf("second Promote = %v, want ErrAlreadyPromoted", err)
	}
	if _, err := rep.PollOnce(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("PollOnce after promote = %v, want ErrPromoted", err)
	}

	// The promoted leader logs new applies durably.
	extra := testEvents(t)[n : n+20]
	applyBatches(t, follower, extra, 20)
	endDigest := follower.RuntimeDigest()
	follower.DetachWAL().Abandon()

	recovered := newModel(t, numNodes)
	rlog, err := wal.Open(wal.Options{Dir: dirB, Policy: wal.SyncGroup, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	if _, err := recovered.RecoverWAL(rlog); err != nil {
		t.Fatal(err)
	}
	if got := recovered.RuntimeDigest(); got != endDigest {
		t.Fatalf("recovered digest %x != promoted leader %x", got, endDigest)
	}
}

// TestFollowerIncrementalPolls: records shipped in pieces are applied
// exactly once, in order, across many polls — including a torn tail that
// parks and later completes.
func TestFollowerIncrementalPolls(t *testing.T) {
	events := testEvents(t)[:200]
	numNodes := 0
	for _, e := range events {
		if int(e.Src) >= numNodes {
			numNodes = int(e.Src) + 1
		}
		if int(e.Dst) >= numNodes {
			numNodes = int(e.Dst) + 1
		}
	}

	dirA := t.TempDir()
	walOpts := wal.Options{Dir: dirA, Policy: wal.SyncGroup, SegmentBytes: 2048}
	leader := newModel(t, numNodes)
	log, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}

	dirB := t.TempDir()
	shipper := wal.NewShipper(dirA, wal.DirDest{Dir: dirB}, wal.ShipOptions{Tail: true})
	follower := newModel(t, numNodes)
	rep, err := NewFollower(follower, dirB, Options{WAL: walOpts})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for i := 0; i < len(events); i += 20 {
		applyBatches(t, leader, events[i:i+20], 20)
		if _, err := shipper.ShipNow(); err != nil {
			t.Fatal(err)
		}
		applied, err := rep.PollOnce()
		if err != nil {
			t.Fatal(err)
		}
		total += applied
	}
	if total != len(events) {
		t.Fatalf("applied %d events across polls, want %d", total, len(events))
	}
	if got, want := follower.RuntimeDigest(), leader.RuntimeDigest(); got != want {
		t.Fatalf("follower digest %x != leader %x", got, want)
	}
	leader.DetachWAL().Close()
}

func TestNewFollowerRejectsAttachedWAL(t *testing.T) {
	dir := t.TempDir()
	m := newModel(t, 8)
	log, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := m.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFollower(m, dir, Options{}); err == nil {
		t.Fatal("NewFollower accepted a model with a WAL attached")
	}
}
