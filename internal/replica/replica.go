// Package replica implements the warm-standby follower: a model fed from a
// log-shipped copy of the leader's write-ahead log, continuously replayed
// through the same inference path that produced it, promotable to leader
// the moment the primary is lost.
//
// Dataflow: the leader ships WAL segments (wal.Shipper, usually the tail
// mode behind wal.ServeShip) into the follower's log directory; PollOnce
// scans the shipped bytes with a wal.Follower and replays each complete
// record via core.Model.ReplayBatch. Because replay is the apply path,
// the follower's runtime state at watermark W is bitwise identical to the
// leader's at W — RuntimeDigest equality is the scenario harness's proof.
// A torn or still-in-flight tail parks the scanner; the next PollOnce
// resumes where it left off once more bytes arrive.
//
// Promotion turns the follower into a leader: the shipped log directory is
// opened for appends (wal.Open truncates any torn tail exactly like crash
// recovery would), any records past the follower's cursor are replayed,
// and the log is attached to the model so new applies are durably logged.
// Promote is fenced at every layer a stale leader could reach:
//
//   - a second Promote returns ErrAlreadyPromoted rather than
//     double-attaching;
//   - after promotion PollOnce refuses to run, so a stale shipping
//     connection can never rewind a promoted leader's replay cursor;
//   - the on-disk writes themselves are fenced: shipped chunks routed
//     through ShipDest stop landing the instant Promote begins, so an
//     ex-leader that is still alive (planned switchover, partition)
//     cannot overwrite the new leader's freshly appended WAL frames.
//
// Lag/role reads (Cursor, Role, LagEvents) are lock-free: they never
// contend with a replay in progress, so readiness probes stay responsive
// during a long catch-up.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"apan/internal/core"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

// ErrAlreadyPromoted is returned by Promote when the replica has already
// been promoted — the fencing signal against double promotion.
var ErrAlreadyPromoted = errors.New("replica: already promoted")

// ErrPromoted is returned by PollOnce after promotion: a promoted leader
// must not accept further shipped records. ShipDest returns it from
// WriteChunk for the same reason — no shipped byte may land in the log
// directory once it can be reopened for appends.
var ErrPromoted = errors.New("replica: promoted — follower polling stopped")

// Options configures a follower replica.
type Options struct {
	// WAL are the log options used when the replica is promoted and the
	// shipped directory is opened for appends (Dir is overridden with the
	// replica's directory). The sync policy should match the leader's.
	WAL wal.Options
}

// Replica is a warm-standby follower over one model and one shipped log
// directory. Methods are safe for concurrent use; PollOnce and Promote
// serialize against each other, so replay never races promotion, and
// Promote additionally serializes against ShipDest chunk writes, so
// promotion never races the ship stream's disk writes.
type Replica struct {
	m       *core.Model
	dir     string
	walOpts wal.Options

	mu        sync.Mutex // serializes PollOnce, Promote, SetFenceHook
	f         *wal.Follower
	fenceHook func()

	// shipMu serializes ShipDest chunk writes against the promotion
	// fence: WriteChunk checks fenced under it, and Promote takes it once
	// after setting fenced, so no in-flight chunk can still be writing
	// when the directory is reopened for appends.
	shipMu sync.Mutex
	fenced atomic.Bool

	// Lock-free read mirrors: cursor tracks the follower's replay cursor
	// (updated after each delivered batch, so lag reads stay fresh during
	// a long catch-up), promoted flips once Promote succeeds, and logp
	// holds the attached log from then on. All are written only under mu.
	cursor   atomic.Uint64
	promoted atomic.Bool
	logp     atomic.Pointer[wal.Log]

	// leaderNext is the most recent leader NextIndex observed from a ship
	// heartbeat; 0 until the first heartbeat arrives.
	leaderNext atomic.Uint64
}

// NewFollower wraps model m as a follower replaying the shipped log in dir,
// starting from the model's current graph watermark (typically the
// checkpoint both sides were seeded from). The model must not have a WAL
// attached — the follower's applies are replays of already-durable records.
func NewFollower(m *core.Model, dir string, opts Options) (*Replica, error) {
	if m.WAL() != nil {
		return nil, fmt.Errorf("replica: model has a WAL attached — followers replay, they do not log")
	}
	f, err := wal.OpenFollower(dir, uint64(m.GraphEvents()))
	if err != nil {
		return nil, err
	}
	opts.WAL.Dir = dir
	r := &Replica{m: m, dir: dir, walOpts: opts.WAL, f: f}
	r.cursor.Store(f.Cursor())
	return r, nil
}

// PollOnce scans the shipped directory once and replays every complete
// record past the cursor through the model. It returns the number of events
// applied; a torn or in-flight tail is not an error — it parks the scanner
// until more bytes arrive. Returns ErrPromoted after promotion.
func (r *Replica) PollOnce() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted.Load() {
		return 0, ErrPromoted
	}
	applied := 0
	_, err := r.f.Poll(func(first uint64, events []tgraph.Event) error {
		r.m.ReplayBatch(events)
		applied += len(events)
		r.cursor.Store(first + uint64(len(events)))
		return nil
	})
	r.cursor.Store(r.f.Cursor())
	return applied, err
}

// Cursor returns the next event index the follower expects — the exclusive
// upper bound of everything replayed so far (after promotion, of everything
// durably logged). Lock-free: never blocks behind a replay in progress.
func (r *Replica) Cursor() uint64 {
	if l := r.logp.Load(); l != nil {
		return l.NextIndex()
	}
	return r.cursor.Load()
}

// ObserveLeaderIndex records the leader's NextIndex from a ship heartbeat;
// LagEvents reports against the most recent observation.
func (r *Replica) ObserveLeaderIndex(next uint64) {
	r.leaderNext.Store(next)
}

// LagEvents returns how many events the leader has logged beyond the
// follower's cursor, per the last heartbeat — 0 before any heartbeat, and
// floored at 0 (the local cursor can briefly lead a stale heartbeat).
func (r *Replica) LagEvents() int64 {
	next := r.leaderNext.Load()
	if next == 0 {
		return 0
	}
	lag := int64(next) - int64(r.Cursor())
	if lag < 0 {
		return 0
	}
	return lag
}

// Role reports "follower" or "leader". Lock-free: a readiness probe
// landing mid-catch-up gets an immediate answer.
func (r *Replica) Role() string {
	if r.promoted.Load() {
		return "leader"
	}
	return "follower"
}

// ShipDest returns the destination the leader's ship stream must write
// through: chunks land in the replica's directory until promotion begins,
// then every WriteChunk returns ErrPromoted. Routing wal.FollowShip
// through this (rather than a raw wal.DirDest on the same directory) is
// what fences the on-disk writes — a still-alive ex-leader's stream
// cannot overwrite WAL frames the promoted leader has appended at the
// same byte offsets.
func (r *Replica) ShipDest() wal.ShipDest {
	return fencedShipDest{r}
}

type fencedShipDest struct{ r *Replica }

func (d fencedShipDest) WriteChunk(name string, off int64, data []byte) error {
	d.r.shipMu.Lock()
	defer d.r.shipMu.Unlock()
	if d.r.fenced.Load() {
		return ErrPromoted
	}
	return wal.DirDest{Dir: d.r.dir}.WriteChunk(name, off, data)
}

// SetFenceHook registers f to run inside Promote, after shipped-chunk
// writes are fenced and before the directory is reopened for appends —
// the place to sever an active ship connection so the receiving loop
// notices takeover even if the ex-leader keeps streaming. At most one
// hook; a later call replaces it.
func (r *Replica) SetFenceHook(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fenceHook = f
}

// Promote turns the follower into a leader: fence the ship stream (no
// shipped byte may land past this point), open the shipped directory for
// appends (truncating any torn tail, exactly like crash recovery), replay
// whatever complete records the last poll had not yet applied, and attach
// the log to the model so subsequent applies are durably logged. After a
// successful return the model is a read-write leader whose state at the
// takeover watermark is bitwise the crashed leader's. A second Promote
// returns ErrAlreadyPromoted.
func (r *Replica) Promote() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted.Load() {
		return ErrAlreadyPromoted
	}
	// Fence first: refuse new ship chunks, wait out any chunk already
	// inside WriteChunk, then sever the connection. Only once no shipped
	// byte can land may the directory be reopened for appends.
	r.fenced.Store(true)
	r.shipMu.Lock() // barrier: any in-flight WriteChunk has drained
	if r.fenceHook != nil {
		r.fenceHook()
	}
	r.shipMu.Unlock()
	// A failed promotion lifts the fence so the process is still a
	// functioning follower. Safe even though Open may already have
	// truncated a torn tail: the fence hook dropped the connection, and a
	// reconnecting leader re-ships every segment from byte zero.
	opts := r.walOpts
	opts.Dir = r.dir
	log, err := wal.Open(opts)
	if err != nil {
		r.fenced.Store(false)
		return fmt.Errorf("replica: promote: open shipped log: %w", err)
	}
	if _, err := r.m.RecoverWAL(log); err != nil {
		log.Abandon()
		r.fenced.Store(false)
		return fmt.Errorf("replica: promote: catch-up replay: %w", err)
	}
	if err := r.m.AttachWAL(log); err != nil {
		log.Abandon()
		r.fenced.Store(false)
		return fmt.Errorf("replica: promote: %w", err)
	}
	r.cursor.Store(log.NextIndex())
	r.logp.Store(log)
	r.promoted.Store(true)
	return nil
}

// Log returns the attached write-ahead log once promoted (nil before).
// The caller owns closing it at shutdown, via the model's DetachWAL.
func (r *Replica) Log() *wal.Log {
	return r.logp.Load()
}
