// Package replica implements the warm-standby follower: a model fed from a
// log-shipped copy of the leader's write-ahead log, continuously replayed
// through the same inference path that produced it, promotable to leader
// the moment the primary is lost.
//
// Dataflow: the leader ships WAL segments (wal.Shipper, usually the tail
// mode behind wal.ServeShip) into the follower's log directory; PollOnce
// scans the shipped bytes with a wal.Follower and replays each complete
// record via core.Model.ReplayBatch. Because replay is the apply path,
// the follower's runtime state at watermark W is bitwise identical to the
// leader's at W — RuntimeDigest equality is the scenario harness's proof.
// A torn or still-in-flight tail parks the scanner; the next PollOnce
// resumes where it left off once more bytes arrive.
//
// Promotion turns the follower into a leader: the shipped log directory is
// opened for appends (wal.Open truncates any torn tail exactly like crash
// recovery would), any records past the follower's cursor are replayed,
// and the log is attached to the model so new applies are durably logged.
// Promote is fenced — a second call returns ErrAlreadyPromoted rather than
// double-attaching — and after promotion PollOnce refuses to run, so a
// stale shipping connection can never rewind a promoted leader.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"apan/internal/core"
	"apan/internal/tgraph"
	"apan/internal/wal"
)

// ErrAlreadyPromoted is returned by Promote when the replica has already
// been promoted — the fencing signal against double promotion.
var ErrAlreadyPromoted = errors.New("replica: already promoted")

// ErrPromoted is returned by PollOnce after promotion: a promoted leader
// must not accept further shipped records.
var ErrPromoted = errors.New("replica: promoted — follower polling stopped")

// Options configures a follower replica.
type Options struct {
	// WAL are the log options used when the replica is promoted and the
	// shipped directory is opened for appends (Dir is overridden with the
	// replica's directory). The sync policy should match the leader's.
	WAL wal.Options
}

// Replica is a warm-standby follower over one model and one shipped log
// directory. Methods are safe for concurrent use; PollOnce and Promote
// serialize against each other, so replay never races promotion.
type Replica struct {
	m       *core.Model
	dir     string
	walOpts wal.Options

	mu       sync.Mutex
	f        *wal.Follower
	promoted bool
	log      *wal.Log // non-nil once promoted

	// leaderNext is the most recent leader NextIndex observed from a ship
	// heartbeat; 0 until the first heartbeat arrives.
	leaderNext atomic.Uint64
}

// NewFollower wraps model m as a follower replaying the shipped log in dir,
// starting from the model's current graph watermark (typically the
// checkpoint both sides were seeded from). The model must not have a WAL
// attached — the follower's applies are replays of already-durable records.
func NewFollower(m *core.Model, dir string, opts Options) (*Replica, error) {
	if m.WAL() != nil {
		return nil, fmt.Errorf("replica: model has a WAL attached — followers replay, they do not log")
	}
	f, err := wal.OpenFollower(dir, uint64(m.GraphEvents()))
	if err != nil {
		return nil, err
	}
	opts.WAL.Dir = dir
	return &Replica{m: m, dir: dir, walOpts: opts.WAL, f: f}, nil
}

// PollOnce scans the shipped directory once and replays every complete
// record past the cursor through the model. It returns the number of events
// applied; a torn or in-flight tail is not an error — it parks the scanner
// until more bytes arrive. Returns ErrPromoted after promotion.
func (r *Replica) PollOnce() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return 0, ErrPromoted
	}
	applied := 0
	_, err := r.f.Poll(func(first uint64, events []tgraph.Event) error {
		r.m.ReplayBatch(events)
		applied += len(events)
		return nil
	})
	return applied, err
}

// Cursor returns the next event index the follower expects — the exclusive
// upper bound of everything replayed so far.
func (r *Replica) Cursor() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return r.log.NextIndex()
	}
	return r.f.Cursor()
}

// ObserveLeaderIndex records the leader's NextIndex from a ship heartbeat;
// LagEvents reports against the most recent observation.
func (r *Replica) ObserveLeaderIndex(next uint64) {
	r.leaderNext.Store(next)
}

// LagEvents returns how many events the leader has logged beyond the
// follower's cursor, per the last heartbeat — 0 before any heartbeat, and
// floored at 0 (the local cursor can briefly lead a stale heartbeat).
func (r *Replica) LagEvents() int64 {
	next := r.leaderNext.Load()
	if next == 0 {
		return 0
	}
	lag := int64(next) - int64(r.Cursor())
	if lag < 0 {
		return 0
	}
	return lag
}

// Role reports "follower" or "leader".
func (r *Replica) Role() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return "leader"
	}
	return "follower"
}

// Promote turns the follower into a leader: open the shipped directory for
// appends (truncating any torn tail, exactly like crash recovery), replay
// whatever complete records the last poll had not yet applied, and attach
// the log to the model so subsequent applies are durably logged. After a
// successful return the model is a read-write leader whose state at the
// takeover watermark is bitwise the crashed leader's. A second Promote
// returns ErrAlreadyPromoted.
func (r *Replica) Promote() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return ErrAlreadyPromoted
	}
	opts := r.walOpts
	opts.Dir = r.dir
	log, err := wal.Open(opts)
	if err != nil {
		return fmt.Errorf("replica: promote: open shipped log: %w", err)
	}
	if _, err := r.m.RecoverWAL(log); err != nil {
		log.Abandon()
		return fmt.Errorf("replica: promote: catch-up replay: %w", err)
	}
	if err := r.m.AttachWAL(log); err != nil {
		log.Abandon()
		return fmt.Errorf("replica: promote: %w", err)
	}
	r.log = log
	r.promoted = true
	return nil
}

// Log returns the attached write-ahead log once promoted (nil before).
// The caller owns closing it at shutdown, via the model's DetachWAL.
func (r *Replica) Log() *wal.Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log
}
