package nn

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"apan/internal/tensor"
)

// ParamSet is an immutable, versioned snapshot of a model's parameter
// values — the unit of hot-swappable weights in the online-learning design.
// A trainer steps a private mutable copy of the parameters and publishes by
// snapshotting them into a fresh ParamSet (copy-on-write); the serving path
// atomically loads one ParamSet pointer per batch, so a forward pass can
// never observe a torn mix of two versions.
//
// Immutability is a contract, not an enforcement: the value matrices are
// reachable through Value and Bind, and the inference modules bound to them
// only ever read. Fingerprint is computed once at construction, so a stray
// in-place mutation of a published set is detectable by re-hashing (see
// RecomputeFingerprint) — the scenario harness's no-torn-params invariant
// does exactly that.
type ParamSet struct {
	version uint64
	values  []*tensor.Matrix
	fp      uint64
}

// NewParamSet deep-copies the current values of params into an immutable
// snapshot tagged with version.
func NewParamSet(version uint64, params []*Tensor) *ParamSet {
	values := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		values[i] = p.W.Clone()
	}
	ps := &ParamSet{version: version, values: values}
	ps.fp = ps.RecomputeFingerprint()
	return ps
}

// NewParamSetFrom snapshots params incrementally against a previously
// published set: tensors whose values are bitwise-identical to prev's alias
// prev's (immutable) matrices instead of being cloned, so a publish costs
// O(tensors the trainer actually touched) in copied bytes instead of the
// full model size. The fingerprint is still recomputed over every value, so
// the no-torn-params invariant (Fingerprint == RecomputeFingerprint) is
// exactly as strong as with a full clone. A nil prev, or a prev with a
// different tensor layout, degrades to the full deep copy of NewParamSet.
func NewParamSetFrom(version uint64, params []*Tensor, prev *ParamSet) *ParamSet {
	if prev == nil || len(prev.values) != len(params) {
		return NewParamSet(version, params)
	}
	values := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		old := prev.values[i]
		if old.Rows == p.W.Rows && old.Cols == p.W.Cols && bitsEqual(old.Data, p.W.Data) {
			values[i] = old
			continue
		}
		values[i] = p.W.Clone()
	}
	ps := &ParamSet{version: version, values: values}
	ps.fp = ps.RecomputeFingerprint()
	return ps
}

// bitsEqual compares two float32 slices bit-for-bit (NaN == NaN, 0 != −0),
// the equality that matters for fingerprint stability.
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// Version returns the snapshot's publish version.
func (ps *ParamSet) Version() uint64 { return ps.version }

// NumTensors returns the number of parameter tensors in the set.
func (ps *ParamSet) NumTensors() int { return len(ps.values) }

// Value returns the i-th parameter matrix. Callers must treat it as
// read-only; it is shared by every module bound to this set.
func (ps *ParamSet) Value(i int) *tensor.Matrix { return ps.values[i] }

// Fingerprint returns the FNV-1a hash over every value computed when the
// set was created. Because the set is immutable, RecomputeFingerprint must
// always agree with it; a divergence means a published set was mutated in
// place — the torn-parameter bug the versioning scheme exists to prevent.
func (ps *ParamSet) Fingerprint() uint64 { return ps.fp }

// RecomputeFingerprint re-hashes the current values (shapes included).
func (ps *ParamSet) RecomputeFingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, m := range ps.values {
		binary.LittleEndian.PutUint64(b[:], uint64(m.Rows)<<32|uint64(uint32(m.Cols)))
		h.Write(b[:])
		for _, v := range m.Data {
			binary.LittleEndian.PutUint32(b[:4], math.Float32bits(v))
			h.Write(b[:4])
		}
	}
	return h.Sum64()
}

// shapeCheck validates that params matches the set tensor-for-tensor.
func (ps *ParamSet) shapeCheck(params []*Tensor) error {
	if len(params) != len(ps.values) {
		return fmt.Errorf("nn: param set has %d tensors, model has %d", len(ps.values), len(params))
	}
	for i, p := range params {
		v := ps.values[i]
		if p.W.Rows != v.Rows || p.W.Cols != v.Cols {
			return fmt.Errorf("nn: param %d shape %dx%d, set has %dx%d", i, p.W.Rows, p.W.Cols, v.Rows, v.Cols)
		}
	}
	return nil
}

// CopyTo copies the snapshot's values into params (a trainer seeding or
// rolling back its private working copy). Shapes must match.
func (ps *ParamSet) CopyTo(params []*Tensor) error {
	if err := ps.shapeCheck(params); err != nil {
		return err
	}
	for i, p := range params {
		copy(p.W.Data, ps.values[i].Data)
	}
	return nil
}

// BindParams aliases each tensor's value matrix to the set's — the zero-copy
// read binding used to materialize inference modules over a published
// snapshot. The bound tensors must never be written through (no optimizer
// steps, no in-place updates); gradients, if any, accumulate in the tensors'
// own G matrices and never touch the set.
func BindParams(params []*Tensor, ps *ParamSet) error {
	if err := ps.shapeCheck(params); err != nil {
		return err
	}
	for i, p := range params {
		p.W = ps.values[i]
	}
	return nil
}

// Save writes the snapshot's values in the versioned APNN binary format —
// the same layout SaveParams produces, so a published set and a parameter
// list are interchangeable on disk.
func (ps *ParamSet) Save(w io.Writer) error {
	tensors := make([]*Tensor, len(ps.values))
	for i, v := range ps.values {
		tensors[i] = &Tensor{W: v}
	}
	return SaveParams(w, tensors)
}
