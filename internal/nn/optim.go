package nn

import (
	"math"

	"apan/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) over a fixed parameter
// set, matching the paper's configuration (lr 1e-4, default betas).
type Adam struct {
	LR      float32
	Beta1   float32
	Beta2   float32
	Eps     float32
	step    int
	params  []*Tensor
	moment1 []*tensor.Matrix
	moment2 []*tensor.Matrix
}

// NewAdam builds an Adam optimizer for params with learning rate lr.
func NewAdam(params []*Tensor, lr float32) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.moment1 = append(a.moment1, tensor.New(p.W.Rows, p.W.Cols))
		a.moment2 = append(a.moment2, tensor.New(p.W.Rows, p.W.Cols))
	}
	return a
}

// Step applies one Adam update from the accumulated gradients.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for i, p := range a.params {
		if p.G == nil {
			continue
		}
		m, v := a.moment1[i], a.moment2[i]
		for j, g := range p.G.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.W.Data[j] -= a.LR * mh / (tensor.Sqrt32(vh) + a.Eps)
		}
	}
}

// ZeroGrad clears the gradients of every managed parameter.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most max.
// It returns the pre-clip norm. Used by the recurrent baselines.
func ClipGradNorm(params []*Tensor, max float64) float64 {
	var total float64
	for _, p := range params {
		if p.G == nil {
			continue
		}
		n := p.G.Norm2()
		total += n * n
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		scale := float32(max / norm)
		for _, p := range params {
			if p.G != nil {
				p.G.Scale(scale)
			}
		}
	}
	return norm
}

// SGD is a plain stochastic-gradient-descent optimizer used by the
// random-walk skip-gram trainers.
type SGD struct {
	LR     float32
	params []*Tensor
}

// NewSGD builds an SGD optimizer for params with learning rate lr.
func NewSGD(params []*Tensor, lr float32) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for _, p := range s.params {
		if p.G == nil {
			continue
		}
		p.W.AddScaled(p.G, -s.LR)
	}
}

// ZeroGrad clears the gradients of every managed parameter.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}
