package nn

import (
	"fmt"
	"math/rand"

	"apan/internal/tensor"
)

// Tensor is a node in the autograd graph: a value matrix plus an optional
// gradient of the final scalar loss with respect to it.
type Tensor struct {
	W        *tensor.Matrix // value
	G        *tensor.Matrix // gradient, allocated lazily
	needGrad bool
	back     func() // accumulates input gradients; nil for leaves
}

// Value returns the underlying value matrix.
func (t *Tensor) Value() *tensor.Matrix { return t.W }

// Grad returns the gradient matrix, allocating it zeroed on first use.
func (t *Tensor) Grad() *tensor.Matrix {
	if t.G == nil {
		t.G = tensor.New(t.W.Rows, t.W.Cols)
	}
	return t.G
}

// NeedGrad reports whether gradients flow into this tensor.
func (t *Tensor) NeedGrad() bool { return t.needGrad }

// ZeroGrad clears the accumulated gradient, if any.
func (t *Tensor) ZeroGrad() {
	if t.G != nil {
		t.G.Zero()
	}
}

// Param creates a trainable rows×cols parameter tensor. Parameters live
// outside any tape and persist across training steps.
func Param(rows, cols int) *Tensor {
	return &Tensor{W: tensor.New(rows, cols), G: tensor.New(rows, cols), needGrad: true}
}

// ParamFrom wraps an existing matrix as a trainable parameter.
func ParamFrom(m *tensor.Matrix) *Tensor {
	return &Tensor{W: m, G: tensor.New(m.Rows, m.Cols), needGrad: true}
}

// Tape records operations so Backward can replay them in reverse. A tape is
// cheap; build a fresh one per forward pass.
type Tape struct {
	nodes    []*Tensor
	training bool
	rng      *rand.Rand
}

// NewTape returns an inference-mode tape (dropout disabled).
func NewTape() *Tape { return &Tape{} }

// NewTrainingTape returns a tape with dropout enabled, drawing masks from rng.
func NewTrainingTape(rng *rand.Rand) *Tape { return &Tape{training: true, rng: rng} }

// Training reports whether the tape runs in training mode.
func (tp *Tape) Training() bool { return tp.training }

// Input wraps a constant matrix as a leaf tensor with no gradient.
func (tp *Tape) Input(m *tensor.Matrix) *Tensor {
	return &Tensor{W: m}
}

// record registers an op output on the tape.
func (tp *Tape) record(out *Tensor) *Tensor {
	tp.nodes = append(tp.nodes, out)
	return out
}

// newResult builds the output tensor for an op with the given inputs.
func (tp *Tape) newResult(rows, cols int, inputs ...*Tensor) *Tensor {
	out := &Tensor{W: tensor.New(rows, cols)}
	for _, in := range inputs {
		if in.needGrad {
			out.needGrad = true
			break
		}
	}
	return out
}

// Backward seeds d(loss)/d(loss)=1 and propagates gradients to every tensor
// reachable from loss that needs them. loss must be a 1×1 tensor produced on
// this tape.
func (tp *Tape) Backward(loss *Tensor) {
	if loss.W.Rows != 1 || loss.W.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward needs a scalar loss, got %dx%d", loss.W.Rows, loss.W.Cols))
	}
	loss.Grad().Data[0] = 1
	// The tape is already in topological order (ops are recorded after their
	// inputs exist), so a reverse sweep visits consumers before producers.
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil && n.needGrad && n.G != nil {
			n.back()
		}
	}
}
