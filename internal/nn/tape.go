package nn

import (
	"fmt"
	"math/rand"

	"apan/internal/tensor"
)

// Tensor is a node in the autograd graph: a value matrix plus an optional
// gradient of the final scalar loss with respect to it.
//
// The backward pass is encoded as data, not closures: op identifies the
// operation that produced this tensor (opNone for leaves) and the remaining
// fields hold its operands — see backward.go for the dispatch. A captured
// closure heap-allocates per op per forward pass, which is what kept pooled
// training tapes at ~200 allocs/step; plain field stores on arena-reused
// nodes allocate nothing.
type Tensor struct {
	W        *tensor.Matrix // value
	G        *tensor.Matrix // gradient, allocated lazily
	needGrad bool

	op     opKind
	a      *Tensor        // first operand
	b      *Tensor        // second operand
	c      *Tensor        // third operand
	sc     float32        // scalar operand (Scale factor, LeakyReLU slope, MHA scale, …)
	i0, i1 int            // int operands (ConcatCols split, SliceCols bounds, MHA heads/slots)
	idx    []int32        // int32 operand (Gather indices, SegmentMean ids, OverlayRows winners)
	f0     []float32      // float operand (Dropout mask, BCE targets, MHA weights, LayerNorm invStd)
	f1     []float32      // backward scratch drawn at forward time (MHA dα, LayerNorm dx̂)
	aux    *tensor.Matrix // matrix operand (LayerNorm x̂ cache, MSE target)
	cnts   []int          // MHA per-query valid-slot counts
	sp     *SparseMatrix  // SpMM operand
}

// Value returns the underlying value matrix.
func (t *Tensor) Value() *tensor.Matrix { return t.W }

// Grad returns the gradient matrix, allocating it zeroed on first use.
func (t *Tensor) Grad() *tensor.Matrix {
	if t.G == nil {
		t.G = tensor.New(t.W.Rows, t.W.Cols)
	}
	return t.G
}

// NeedGrad reports whether gradients flow into this tensor.
func (t *Tensor) NeedGrad() bool { return t.needGrad }

// ZeroGrad clears the accumulated gradient, if any.
func (t *Tensor) ZeroGrad() {
	if t.G != nil {
		t.G.Zero()
	}
}

// Param creates a trainable rows×cols parameter tensor. Parameters live
// outside any tape and persist across training steps.
func Param(rows, cols int) *Tensor {
	return &Tensor{W: tensor.New(rows, cols), G: tensor.New(rows, cols), needGrad: true}
}

// ParamFrom wraps an existing matrix as a trainable parameter.
func ParamFrom(m *tensor.Matrix) *Tensor {
	return &Tensor{W: m, G: tensor.New(m.Rows, m.Cols), needGrad: true}
}

// ParamShell creates a rows×cols parameter tensor with shape but no value
// or gradient storage. It exists for modules that are materialized only to
// be bound to a published ParamSet (BindParams replaces W wholesale and the
// read-only binding never touches G): skipping the two eager matrices makes
// a parameter publish cost O(changed tensors) instead of O(model size). A
// shell must be bound before any forward pass.
func ParamShell(rows, cols int) *Tensor {
	return &Tensor{W: &tensor.Matrix{Rows: rows, Cols: cols}, needGrad: true}
}

// Tape records operations so Backward can replay them in reverse. A plain
// tape (NewTape/NewTrainingTape) is cheap to build fresh per forward pass.
// A pooled tape (NewInferenceTape) is the opposite: it is built once, holds
// on to every Tensor node and op-output matrix it ever handed out, and
// Reset recycles them wholesale — after warm-up a forward pass on a pooled
// tape performs zero heap allocation.
type Tape struct {
	nodes    []*Tensor
	training bool
	rng      *rand.Rand

	// nograd marks an inference-only tape: op outputs never need
	// gradients, so the ops skip recording their backward operands and
	// Backward panics.
	nograd bool

	// quant, when non-nil on a nograd tape, routes MatMul against quantized
	// published weights through the int8 GEMM (see quant.go).
	quant *QuantParamSet

	// pool, when non-nil, supplies op-output matrices and scratch buffers;
	// everything drawn is tracked in owned and returned on Reset. The tape
	// owns its pool exclusively (pools are not goroutine-safe).
	pool  *tensor.Pool
	owned []*tensor.Matrix

	// arena recycles the Tensor nodes themselves across Reset.
	arena []*Tensor
	used  int

	// attArena recycles the Attention records MaskedMHA returns.
	attArena []*Attention
	attUsed  int

	// i32buf and i8buf are bump allocators for int-typed op scratch
	// (OverlayRows winner maps, int8 activation quantization); like the
	// float scratch they live until Reset and are reused across passes.
	i32buf  []int32
	i32used int
	i8buf   []int8
	i8used  int

	// tmT is a reusable matrix header over tape scratch for the transposed
	// operands the fast-GEMM backward path materializes (see stepBack); its
	// two uses per MatMul node are strictly sequential.
	tmT tensor.Matrix
}

// NewTape returns an inference-mode tape (dropout disabled) that still
// records backward ops, so Backward works when any input needs
// gradients. Build a fresh one per forward pass.
func NewTape() *Tape { return &Tape{} }

// NewTrainingTape returns a tape with dropout enabled, drawing masks from rng.
func NewTrainingTape(rng *rand.Rand) *Tape { return &Tape{training: true, rng: rng} }

// NewReusableTrainingTape returns a training-mode tape (dropout from rng,
// gradients recorded) whose op outputs and gradient matrices draw from pool
// and are recycled wholesale by Reset — the per-step tape of the online
// trainer, which runs one mini-batch forward/backward every few applied
// batches for the lifetime of the process. Together with the opcode-encoded
// backward pass (backward.go) this makes a warm train step allocation-free.
// The tape takes exclusive ownership of pool.
func NewReusableTrainingTape(pool *tensor.Pool, rng *rand.Rand) *Tape {
	return &Tape{training: true, rng: rng, pool: pool}
}

// NewInferenceTape returns a reusable zero-allocation tape for serving:
// gradients are disabled outright (Backward panics), op outputs draw their
// storage from pool, and Reset recycles every node and matrix for the next
// pass. The tape takes exclusive ownership of pool.
func NewInferenceTape(pool *tensor.Pool) *Tape {
	return &Tape{nograd: true, pool: pool}
}

// Training reports whether the tape runs in training mode.
func (tp *Tape) Training() bool { return tp.training }

// Reset recycles the tape for the next forward pass: every pooled matrix
// returns to the pool and the Tensor/Attention nodes are reused in place.
// Values produced by the previous pass become invalid. Only meaningful on
// pooled tapes; on a plain tape it just truncates the op record.
func (tp *Tape) Reset() {
	if tp.pool != nil {
		for i, m := range tp.owned {
			tp.pool.Put(m)
			tp.owned[i] = nil
		}
		tp.owned = tp.owned[:0]
	}
	tp.nodes = tp.nodes[:0]
	tp.used = 0
	tp.attUsed = 0
	tp.i32used = 0
	tp.i8used = 0
}

// alloc hands out a zeroed Tensor node, reusing the arena on pooled tapes.
func (tp *Tape) alloc() *Tensor {
	if tp.used < len(tp.arena) {
		t := tp.arena[tp.used]
		tp.used++
		*t = Tensor{}
		return t
	}
	t := &Tensor{}
	tp.arena = append(tp.arena, t)
	tp.used++
	return t
}

// newMatrix allocates zeroed op-output storage, from the pool when present.
func (tp *Tape) newMatrix(rows, cols int) *tensor.Matrix {
	if tp.pool == nil {
		return tensor.New(rows, cols)
	}
	m := tp.pool.Get(rows, cols)
	tp.owned = append(tp.owned, m)
	return m
}

// newMatrixRaw is newMatrix without the zeroing, for ops that overwrite
// every element of their output (reused pool storage carries stale values).
func (tp *Tape) newMatrixRaw(rows, cols int) *tensor.Matrix {
	if tp.pool == nil {
		return tensor.New(rows, cols)
	}
	m := tp.pool.GetRaw(rows, cols)
	tp.owned = append(tp.owned, m)
	return m
}

// scratch allocates a zeroed float32 buffer with tape lifetime (returned to
// the pool on Reset) for op-internal caches like attention weights.
func (tp *Tape) scratch(n int) []float32 {
	return tp.newMatrix(1, n).Data
}

// scratchI32 hands out an int32 buffer with tape lifetime from a bump arena
// reused across Reset. Contents are stale; callers must overwrite. Growth
// mid-pass abandons the old backing (still referenced by earlier slices,
// which stay valid until Reset) and converges to zero allocations once the
// arena has seen a full pass.
func (tp *Tape) scratchI32(n int) []int32 {
	if tp.i32used+n > len(tp.i32buf) {
		tp.i32buf = make([]int32, max(2*len(tp.i32buf), tp.i32used+n, 64))
		tp.i32used = 0
	}
	s := tp.i32buf[tp.i32used : tp.i32used+n : tp.i32used+n]
	tp.i32used += n
	return s
}

// scratchI8 is scratchI32 for int8 buffers (int8 activation quantization).
func (tp *Tape) scratchI8(n int) []int8 {
	if tp.i8used+n > len(tp.i8buf) {
		tp.i8buf = make([]int8, max(2*len(tp.i8buf), tp.i8used+n, 64))
		tp.i8used = 0
	}
	s := tp.i8buf[tp.i8used : tp.i8used+n : tp.i8used+n]
	tp.i8used += n
	return s
}

// Input wraps a constant matrix as a leaf tensor with no gradient.
func (tp *Tape) Input(m *tensor.Matrix) *Tensor {
	t := tp.alloc()
	t.W = m
	return t
}

// record registers an op output on the tape. Inference tapes skip the
// bookkeeping: they never replay.
func (tp *Tape) record(out *Tensor) *Tensor {
	if !tp.nograd {
		tp.nodes = append(tp.nodes, out)
	}
	return out
}

// newResult builds the output tensor for an op with the given inputs. The
// value matrix is zeroed — required by ops that write sparsely (ReLU,
// MaskedMHA, SegmentMean, Dropout).
func (tp *Tape) newResult(rows, cols int, inputs ...*Tensor) *Tensor {
	out := tp.alloc()
	out.W = tp.newMatrix(rows, cols)
	return tp.finishResult(out, inputs)
}

// newResultRaw is newResult with uninitialized value storage, for ops that
// assign every output element.
func (tp *Tape) newResultRaw(rows, cols int, inputs ...*Tensor) *Tensor {
	out := tp.alloc()
	out.W = tp.newMatrixRaw(rows, cols)
	return tp.finishResult(out, inputs)
}

func (tp *Tape) finishResult(out *Tensor, inputs []*Tensor) *Tensor {
	if tp.nograd {
		return out
	}
	for _, in := range inputs {
		if in.needGrad {
			out.needGrad = true
			break
		}
	}
	// On a pooled training tape, draw the gradient from the pool up front so
	// it is recycled on Reset instead of lazily heap-allocated every pass.
	if out.needGrad && tp.pool != nil {
		out.G = tp.newMatrix(out.W.Rows, out.W.Cols)
	}
	return out
}

// newAttention hands out an Attention record, reused across Reset.
func (tp *Tape) newAttention() *Attention {
	if tp.attUsed < len(tp.attArena) {
		a := tp.attArena[tp.attUsed]
		tp.attUsed++
		*a = Attention{}
		return a
	}
	a := &Attention{}
	tp.attArena = append(tp.attArena, a)
	tp.attUsed++
	return a
}

// Backward seeds d(loss)/d(loss)=1 and propagates gradients to every tensor
// reachable from loss that needs them. loss must be a 1×1 tensor produced on
// this tape.
func (tp *Tape) Backward(loss *Tensor) {
	if tp.nograd {
		panic("nn: Backward on an inference tape (NewInferenceTape disables gradients)")
	}
	if loss.W.Rows != 1 || loss.W.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward needs a scalar loss, got %dx%d", loss.W.Rows, loss.W.Cols))
	}
	loss.Grad().Data[0] = 1
	// The tape is already in topological order (ops are recorded after their
	// inputs exist), so a reverse sweep visits consumers before producers.
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.op != opNone && n.needGrad && n.G != nil {
			tp.stepBack(n)
		}
	}
}
