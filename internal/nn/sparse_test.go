package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"apan/internal/tensor"
)

// pathAdjacency builds the symmetric normalized adjacency of a 3-node path.
func pathAdjacency() *SparseMatrix {
	// Graph 0-1-2 with self loops; D = diag(2,3,2).
	// Â[i][j] = 1/√(d_i d_j) for each edge and self loop.
	inv := []float32{1 / tensor.Sqrt32(2), 1 / tensor.Sqrt32(3), 1 / tensor.Sqrt32(2)}
	s := &SparseMatrix{N: 3, RowPtr: []int32{0, 2, 5, 7}}
	add := func(i, j int) {
		s.Col = append(s.Col, int32(j))
		s.Val = append(s.Val, inv[i]*inv[j])
	}
	add(0, 0)
	add(0, 1)
	add(1, 0)
	add(1, 1)
	add(1, 2)
	add(2, 1)
	add(2, 2)
	return s
}

func TestSpMMForward(t *testing.T) {
	s := pathAdjacency()
	x := tensor.FromSlice(3, 1, []float32{1, 1, 1})
	dst := tensor.New(3, 1)
	s.MulDense(dst, x)
	// Row sums of Â for the path graph.
	want0 := float32(0.5 + 1/tensor.Sqrt32(6))
	if !almost(dst.Data[0], want0, 1e-5) {
		t.Fatalf("row 0: %v want %v", dst.Data[0], want0)
	}
	want1 := float32(1.0/3 + 2/tensor.Sqrt32(6))
	if !almost(dst.Data[1], want1, 1e-5) {
		t.Fatalf("row 1: %v want %v", dst.Data[1], want1)
	}
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	s := pathAdjacency()
	x := Param(3, 4)
	x.W.RandN(rng, 1)
	w := Param(4, 2)
	w.W.XavierInit(rng)
	params := []*Tensor{x, w}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		h := tp.MatMul(tp.SpMM(s, x), w)
		return tp, tp.MeanAll(tp.Square(h))
	}, 0.03)
}

func TestSaveLoadParamsErrors(t *testing.T) {
	p := Param(2, 3)
	p.W.Fill(1.5)
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Tensor{p}); err != nil {
		t.Fatal(err)
	}

	// Round trip.
	q := Param(2, 3)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), []*Tensor{q}); err != nil {
		t.Fatal(err)
	}
	for i := range p.W.Data {
		if q.W.Data[i] != p.W.Data[i] {
			t.Fatal("round trip mismatch")
		}
	}

	// Shape mismatch.
	bad := Param(3, 2)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), []*Tensor{bad}); err == nil {
		t.Fatal("want shape error")
	}
	// Count mismatch.
	if err := LoadParams(bytes.NewReader(buf.Bytes()), []*Tensor{q, q}); err == nil {
		t.Fatal("want count error")
	}
	// Garbage.
	if err := LoadParams(bytes.NewReader([]byte("nope")), []*Tensor{q}); err == nil {
		t.Fatal("want magic error")
	}
	// Truncated.
	if err := LoadParams(bytes.NewReader(buf.Bytes()[:10]), []*Tensor{q}); err == nil {
		t.Fatal("want truncation error")
	}
}
