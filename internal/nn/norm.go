package nn

import (
	"fmt"

	"apan/internal/tensor"
)

const layerNormEps = 1e-5

// LayerNormOp normalizes each row of x to zero mean and unit variance, then
// applies the learned per-column gain g and bias b (both 1×cols), following
// Ba et al. (2016) as used in the APAN encoder (paper eq. 5).
func (tp *Tape) LayerNormOp(x, g, b *Tensor) *Tensor {
	d := x.W.Cols
	if g.W.Rows != 1 || g.W.Cols != d || b.W.Rows != 1 || b.W.Cols != d {
		panic(fmt.Sprintf("nn: LayerNorm gain/bias must be 1x%d", d))
	}
	out := tp.newResultRaw(x.W.Rows, d, x, g, b)

	// xhat and invStd are caches for the backward pass; inference tapes
	// skip them entirely and compute the normalized value inline.
	var xhat *tensor.Matrix
	var invStd []float32
	if out.needGrad {
		xhat = tp.newMatrix(x.W.Rows, d)
		invStd = tp.scratch(x.W.Rows)
	}

	// The per-row mean/variance/normalize loop is the fused LayerNormRow
	// kernel, dispatched through the active tier (the default tier matches
	// the historical inline loops bit-for-bit).
	for r := 0; r < x.W.Rows; r++ {
		row := x.W.Row(r)
		o := out.W.Row(r)
		if out.needGrad {
			invStd[r] = tensor.LayerNormRow(o, xhat.Row(r), row, g.W.Data, b.W.Data, layerNormEps)
		} else {
			tensor.LayerNormRow(o, nil, row, g.W.Data, b.W.Data, layerNormEps)
		}
	}

	if out.needGrad {
		// f1 is the dx̂ backward scratch, one row-width buffer reused across
		// rows (fully rewritten per row; see backward.go).
		out.op, out.a, out.b, out.c = opLayerNorm, x, g, b
		out.aux, out.f0, out.f1 = xhat, invStd, tp.scratch(d)
	}
	return tp.record(out)
}
