package nn

import (
	"fmt"

	"apan/internal/tensor"
)

const layerNormEps = 1e-5

// LayerNormOp normalizes each row of x to zero mean and unit variance, then
// applies the learned per-column gain g and bias b (both 1×cols), following
// Ba et al. (2016) as used in the APAN encoder (paper eq. 5).
func (tp *Tape) LayerNormOp(x, g, b *Tensor) *Tensor {
	d := x.W.Cols
	if g.W.Rows != 1 || g.W.Cols != d || b.W.Rows != 1 || b.W.Cols != d {
		panic(fmt.Sprintf("nn: LayerNorm gain/bias must be 1x%d", d))
	}
	out := tp.newResultRaw(x.W.Rows, d, x, g, b)

	// xhat and invStd are caches for the backward pass; inference tapes
	// skip them entirely and compute the normalized value inline.
	var xhat *tensor.Matrix
	var invStd []float32
	if out.needGrad {
		xhat = tp.newMatrix(x.W.Rows, d)
		invStd = tp.scratch(x.W.Rows)
	}

	for r := 0; r < x.W.Rows; r++ {
		row := x.W.Row(r)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(d)
		var vr float32
		for _, v := range row {
			dv := v - mean
			vr += dv * dv
		}
		vr /= float32(d)
		is := 1 / tensor.Sqrt32(vr+layerNormEps)
		o := out.W.Row(r)
		if out.needGrad {
			invStd[r] = is
			xh := xhat.Row(r)
			for j, v := range row {
				h := (v - mean) * is
				xh[j] = h
				o[j] = g.W.Data[j]*h + b.W.Data[j]
			}
		} else {
			for j, v := range row {
				h := (v - mean) * is
				o[j] = g.W.Data[j]*h + b.W.Data[j]
			}
		}
	}

	if out.needGrad {
		out.back = func() {
			n := float32(d)
			for r := 0; r < out.G.Rows; r++ {
				gr := out.G.Row(r)
				xh := xhat.Row(r)
				if g.needGrad {
					gg := g.Grad().Data
					for j, gv := range gr {
						gg[j] += gv * xh[j]
					}
				}
				if b.needGrad {
					bg := b.Grad().Data
					for j, gv := range gr {
						bg[j] += gv
					}
				}
				if x.needGrad {
					// dxhat = dy ⊙ g; dx = invStd (dxhat − mean(dxhat) − xhat·mean(dxhat⊙xhat)).
					var sum, sumXh float32
					dxhat := make([]float32, d)
					for j, gv := range gr {
						dx := gv * g.W.Data[j]
						dxhat[j] = dx
						sum += dx
						sumXh += dx * xh[j]
					}
					mean := sum / n
					meanXh := sumXh / n
					xg := x.Grad().Row(r)
					is := invStd[r]
					for j, dx := range dxhat {
						xg[j] += is * (dx - mean - xh[j]*meanXh)
					}
				}
			}
		}
	}
	return tp.record(out)
}
