package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// SparseMatrix is an N×N CSR matrix used for full-batch GCN propagation.
// GAE/VGAE build the symmetrically normalized adjacency with it.
type SparseMatrix struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float32
}

// MulDense computes dst = S·x for a dense x (no autograd).
func (s *SparseMatrix) MulDense(dst, x *tensor.Matrix) {
	if x.Rows != s.N || dst.Rows != s.N || dst.Cols != x.Cols {
		panic(fmt.Sprintf("nn: SparseMatrix.MulDense shapes %d, %dx%d -> %dx%d", s.N, x.Rows, x.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for r := 0; r < s.N; r++ {
		drow := dst.Row(r)
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			tensor.Axpy(drow, x.Row(int(s.Col[i])), s.Val[i])
		}
	}
}

// SpMM returns S·x on the tape. S must be symmetric (true for the
// normalized adjacency Â = D^{-1/2}(A+I)D^{-1/2}), which makes the backward
// pass dX += S·dY.
func (tp *Tape) SpMM(s *SparseMatrix, x *Tensor) *Tensor {
	out := tp.newResultRaw(s.N, x.W.Cols, x)
	s.MulDense(out.W, x.W)
	if out.needGrad {
		out.op, out.a, out.sp = opSpMM, x, s
	}
	return tp.record(out)
}
