package nn

import (
	"math/rand"
	"testing"

	"apan/internal/tensor"
)

// checkGrads runs one analytic backward pass via build, then compares every
// parameter gradient against central finite differences.
func checkGrads(t *testing.T, params []*Tensor, build func() (*Tape, *Tensor), tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	tp, loss := build()
	tp.Backward(loss)
	worst, err := GradCheck(params, func() float64 {
		_, l := build()
		return float64(l.W.Data[0])
	}, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if worst > tol {
		t.Fatalf("gradient check failed: worst relative error %v > %v", worst, tol)
	}
}

func randInput(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	m.RandN(rng, 0.5)
	return m
}

func TestGradMLPChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w1 := Param(4, 5)
	w1.W.XavierInit(rng)
	b1 := Param(1, 5)
	w2 := Param(5, 1)
	w2.W.XavierInit(rng)
	x := randInput(rng, 3, 4)
	targets := []float32{1, 0, 1}
	params := []*Tensor{w1, b1, w2}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		h := tp.ReLU(tp.AddRowVec(tp.MatMul(tp.Input(x), w1), b1))
		logits := tp.MatMul(h, w2)
		return tp, tp.BCEWithLogits(logits, targets)
	}, 0.03)
}

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Param(2, 3)
	w.W.RandN(rng, 0.5)
	params := []*Tensor{w}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		a := tp.Sigmoid(w)
		b := tp.Tanh(w)
		c := tp.Exp(tp.Scale(w, 0.3))
		d := tp.Square(w)
		e := tp.LeakyReLU(w, 0.2)
		sum := tp.Add(tp.Add(a, b), tp.Add(c, tp.Add(d, e)))
		return tp, tp.MeanAll(sum)
	}, 0.03)
}

func TestGradSubMulAddConst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Param(2, 2)
	a.W.RandN(rng, 1)
	b := Param(2, 2)
	b.W.RandN(rng, 1)
	params := []*Tensor{a, b}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		out := tp.Mul(tp.Sub(a, b), tp.AddConst(tp.Scale(b, 0.5), 1))
		return tp, tp.SumAll(out)
	}, 0.03)
}

func TestGradConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Param(3, 2)
	a.W.RandN(rng, 1)
	b := Param(3, 3)
	b.W.RandN(rng, 1)
	c := Param(3, 2)
	c.W.RandN(rng, 1)
	params := []*Tensor{a, b, c}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		cat := tp.Concat3Cols(a, b, c)
		mid := tp.SliceCols(cat, 1, 6)
		return tp, tp.MeanAll(tp.Square(mid))
	}, 0.03)
}

func TestGradMulRowVecAndAddRowVec(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := Param(3, 4)
	a.W.RandN(rng, 1)
	v := Param(1, 4)
	v.W.RandN(rng, 1)
	w := Param(1, 4)
	w.W.RandN(rng, 1)
	params := []*Tensor{a, v, w}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		out := tp.MulRowVec(tp.AddRowVec(a, w), v)
		return tp, tp.MeanAll(tp.Square(out))
	}, 0.03)
}

func TestGradOverlayRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := Param(4, 3)
	base.W.RandN(rng, 1)
	overlay := Param(2, 3)
	overlay.W.RandN(rng, 1)
	params := []*Tensor{base, overlay}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		out := tp.OverlayRows(base, overlay, []int32{1, 3})
		return tp, tp.MeanAll(tp.Square(out))
	}, 0.03)
}

func TestOverlayRowsValuesAndDuplicates(t *testing.T) {
	tp := NewTape()
	base := tp.Input(tensor.FromSlice(3, 2, []float32{1, 1, 2, 2, 3, 3}))
	ov := Param(2, 2)
	ov.W.CopyFrom(tensor.FromSlice(2, 2, []float32{7, 7, 9, 9}))
	out := tp.OverlayRows(base, ov, []int32{1, 1}) // duplicate target row
	if out.W.At(1, 0) != 9 {
		t.Fatalf("last overlay write must win: %v", out.W.Data)
	}
	if out.W.At(0, 0) != 1 || out.W.At(2, 1) != 3 {
		t.Fatalf("base rows disturbed: %v", out.W.Data)
	}
	loss := tp.SumAll(out)
	tp.Backward(loss)
	// Only the winning overlay row receives gradient.
	if ov.G.At(0, 0) != 0 || ov.G.At(1, 0) != 1 {
		t.Fatalf("overlay grads: %v", ov.G.Data)
	}
}

func TestGradAddRowsTiled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := Param(6, 3) // 2 blocks of 3 slots
	x.W.RandN(rng, 1)
	p := Param(3, 3)
	p.W.RandN(rng, 1)
	params := []*Tensor{x, p}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		return tp, tp.MeanAll(tp.Square(tp.AddRowsTiled(x, p)))
	}, 0.03)
}

func TestGradGather(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	table := Param(5, 3)
	table.W.RandN(rng, 1)
	idx := []int32{0, 2, 2, 4}
	params := []*Tensor{table}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		return tp, tp.MeanAll(tp.Square(tp.Gather(table, idx)))
	}, 0.03)
}

func TestGradSegmentMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := Param(5, 3)
	x.W.RandN(rng, 1)
	segs := []int32{0, 0, 1, 2, 2}
	params := []*Tensor{x}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		return tp, tp.MeanAll(tp.Square(tp.SegmentMean(x, segs, 4)))
	}, 0.03)
}

func TestSegmentMeanEmptySegmentIsZero(t *testing.T) {
	tp := NewTape()
	x := tp.Input(tensor.FromSlice(2, 2, []float32{1, 2, 3, 4}))
	out := tp.SegmentMean(x, []int32{0, 2}, 3)
	for _, v := range out.W.Row(1) {
		if v != 0 {
			t.Fatalf("empty segment not zero: %v", out.W.Data)
		}
	}
	if out.W.At(0, 0) != 1 || out.W.At(2, 1) != 4 {
		t.Fatalf("segment values wrong: %v", out.W.Data)
	}
}

func TestGradRowDot(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Param(4, 3)
	a.W.RandN(rng, 1)
	b := Param(4, 3)
	b.W.RandN(rng, 1)
	params := []*Tensor{a, b}
	targets := []float32{1, 0, 1, 0}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		return tp, tp.BCEWithLogits(tp.RowDot(a, b), targets)
	}, 0.03)
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := Param(3, 6)
	x.W.RandN(rng, 1)
	g := Param(1, 6)
	g.W.Fill(1.2)
	b := Param(1, 6)
	b.W.RandN(rng, 0.1)
	params := []*Tensor{x, g, b}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		return tp, tp.MeanAll(tp.Square(tp.LayerNormOp(x, g, b)))
	}, 0.05)
}

func TestLayerNormRowStats(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tp := NewTape()
	x := tp.Input(randInput(rng, 4, 16))
	g := Param(1, 16)
	g.W.Fill(1)
	b := Param(1, 16)
	out := tp.LayerNormOp(x, g, b)
	for r := 0; r < 4; r++ {
		var mean float32
		row := out.W.Row(r)
		for _, v := range row {
			mean += v
		}
		mean /= 16
		if mean > 1e-4 || mean < -1e-4 {
			t.Fatalf("row %d mean %v", r, mean)
		}
		var vr float32
		for _, v := range row {
			vr += (v - mean) * (v - mean)
		}
		vr /= 16
		if vr < 0.9 || vr > 1.1 {
			t.Fatalf("row %d variance %v", r, vr)
		}
	}
}

func TestGradMaskedMHA(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const bsz, slots, d = 3, 4, 6
	q := Param(bsz, d)
	q.W.RandN(rng, 0.7)
	k := Param(bsz*slots, d)
	k.W.RandN(rng, 0.7)
	v := Param(bsz*slots, d)
	v.W.RandN(rng, 0.7)
	counts := []int{4, 2, 0} // includes a fully masked query
	params := []*Tensor{q, k, v}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		att := tp.MaskedMHA(q, k, v, 2, counts)
		return tp, tp.MeanAll(tp.Square(att.Out))
	}, 0.05)
}

func TestMaskedMHAProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const bsz, slots, d, heads = 2, 3, 4, 2
	tp := NewTape()
	q := tp.Input(randInput(rng, bsz, d))
	k := tp.Input(randInput(rng, bsz*slots, d))
	v := tp.Input(randInput(rng, bsz*slots, d))
	att := tp.MaskedMHA(q, k, v, heads, []int{3, 0})

	// Weights over valid slots sum to 1 per head.
	for h := 0; h < heads; h++ {
		var sum float32
		for i := 0; i < 3; i++ {
			w := att.Weight(0, h, i)
			if w < 0 || w > 1 {
				t.Fatalf("weight out of range: %v", w)
			}
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("head %d weights sum %v", h, sum)
		}
	}
	// Fully masked query produces a zero row.
	for _, x := range att.Out.W.Row(1) {
		if x != 0 {
			t.Fatalf("masked query output not zero: %v", att.Out.W.Row(1))
		}
	}
}

func TestGradTimeEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	omega := Param(1, 5)
	omega.W.RandN(rng, 1)
	phi := Param(1, 5)
	phi.W.RandN(rng, 1)
	dts := []float32{0.1, 0.5, 2.0}
	params := []*Tensor{omega, phi}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		return tp, tp.MeanAll(tp.Square(tp.TimeEncode(dts, omega, phi)))
	}, 0.03)
}

func TestGradGRUCell(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cell := NewGRUCell(3, 4, rng)
	x := randInput(rng, 2, 3)
	h := randInput(rng, 2, 4)
	params := cell.Params()

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		out := cell.Forward(tp, tp.Input(x), tp.Input(h))
		return tp, tp.MeanAll(tp.Square(out))
	}, 0.05)
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	w := Param(2, 3)
	w.W.RandN(rng, 1)
	target := randInput(rng, 2, 3)
	params := []*Tensor{w}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		return tp, tp.MSE(tp.Tanh(w), target)
	}, 0.03)
}

func TestDropoutModes(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := randInput(rng, 10, 10)

	// Inference tape: identity.
	tp := NewTape()
	in := tp.Input(x)
	if got := tp.Dropout(in, 0.5); got != in {
		t.Fatal("inference dropout must be identity")
	}

	// Training tape: some elements zeroed, survivors scaled.
	ttp := NewTrainingTape(rand.New(rand.NewSource(1)))
	out := ttp.Dropout(ttp.Input(x), 0.5)
	zeros, scaled := 0, 0
	for i, v := range out.W.Data {
		switch {
		case v == 0:
			zeros++
		case almost(v, x.Data[i]*2, 1e-5):
			scaled++
		default:
			t.Fatalf("unexpected dropout value %v (input %v)", v, x.Data[i])
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout did not mix: %d zero, %d scaled", zeros, scaled)
	}
}

func almost(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	x := tp.Input(tensor.New(2, 2))
	tp.Backward(tp.Square(x))
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - c||² ; Adam should approach c.
	w := Param(1, 3)
	w.W.Fill(5)
	c := tensor.FromSlice(1, 3, []float32{1, -2, 0.5})
	opt := NewAdam([]*Tensor{w}, 0.05)
	for i := 0; i < 2000; i++ {
		opt.ZeroGrad()
		tp := NewTape()
		loss := tp.MSE(tp.AddConst(w, 0), c)
		tp.Backward(loss)
		opt.Step()
	}
	for j, want := range c.Data {
		if !almost(w.W.Data[j], want, 0.05) {
			t.Fatalf("Adam did not converge: w[%d]=%v want %v", j, w.W.Data[j], want)
		}
	}
}

func TestSGDStep(t *testing.T) {
	w := Param(1, 2)
	w.W.Fill(1)
	w.G.Fill(2)
	NewSGD([]*Tensor{w}, 0.1).Step()
	if !almost(w.W.Data[0], 0.8, 1e-6) {
		t.Fatalf("SGD step wrong: %v", w.W.Data)
	}
}

func TestClipGradNorm(t *testing.T) {
	w := Param(1, 4)
	w.G.Fill(3) // norm 6
	norm := ClipGradNorm([]*Tensor{w}, 3)
	if norm < 5.99 || norm > 6.01 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	var total float64
	for _, v := range w.G.Data {
		total += float64(v) * float64(v)
	}
	if total > 9.01 {
		t.Fatalf("clip failed, norm² %v", total)
	}
	// Below threshold: untouched.
	w2 := Param(1, 2)
	w2.G.Fill(1)
	ClipGradNorm([]*Tensor{w2}, 10)
	if w2.G.Data[0] != 1 {
		t.Fatal("clip should not rescale small grads")
	}
}

func TestDeadBranchesGetNoGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	used := Param(2, 2)
	used.W.RandN(rng, 1)
	unused := Param(2, 2)
	unused.W.RandN(rng, 1)
	tp := NewTape()
	_ = tp.Square(unused) // recorded but not part of the loss
	loss := tp.MeanAll(tp.Square(used))
	tp.Backward(loss)
	if used.G.Norm2() == 0 {
		t.Fatal("used param should have gradient")
	}
	if unused.G.Norm2() != 0 {
		t.Fatal("unused param should have no gradient")
	}
}

func TestGradEncoderComposite(t *testing.T) {
	// Full APAN-encoder-shaped chain: positions + attention + residual +
	// layer norm + MLP, gradients through every module.
	rng := rand.New(rand.NewSource(18))
	const bsz, slots, d = 2, 3, 4
	attn := NewMultiHeadAttention(d, 2, rng)
	pos := NewPositionTable(slots, d, rng)
	ln := NewLayerNorm(d)
	mlp := NewMLP(d, 5, d, 0, rng)
	params := CollectParams(attn, pos, ln, mlp)

	z := randInput(rng, bsz, d)
	mails := randInput(rng, bsz*slots, d)
	counts := []int{3, 1}
	targets := []float32{1, 0}

	checkGrads(t, params, func() (*Tape, *Tensor) {
		tp := NewTape()
		zt := tp.Input(z)
		mb := pos.Forward(tp, tp.Input(mails))
		attOut, _ := attn.Forward(tp, zt, mb, counts)
		res := tp.Add(attOut, zt)
		emb := mlp.Forward(tp, ln.Forward(tp, res))
		logits := tp.RowDot(emb, zt)
		return tp, tp.BCEWithLogits(logits, targets)
	}, 0.06)
}
