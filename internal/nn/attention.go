package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// Attention is the result of a fused masked multi-head attention op. Weights
// holds the forward attention probabilities laid out as [query][head][slot],
// which Model.Explain exposes for interpretability (paper §3.6).
type Attention struct {
	Out     *Tensor
	Weights []float32
	heads   int
	slots   int
}

// Weight returns the attention probability that query q's head h assigned to
// slot i.
func (a *Attention) Weight(q, h, i int) float32 {
	return a.Weights[(q*a.heads+h)*a.slots+i]
}

// Heads reports the head count of the recorded pass.
func (a *Attention) Heads() int { return a.heads }

// Slots reports the per-query slot count of the recorded pass.
func (a *Attention) Slots() int { return a.slots }

// MaskedMHA computes scaled dot-product multi-head attention where each of
// the B query rows attends over its own block of `slots` key/value rows.
//
//	q: B×d        queries
//	k: (B·slots)×d keys, row b·slots+i is slot i of query b
//	v: (B·slots)×d values, same layout
//	counts[b]: number of valid slots for query b (first counts[b] rows of the
//	block participate; the rest are masked out). A query with zero valid slots
//	yields a zero output row.
//
// d must be divisible by heads. The per-head outputs are concatenated, so a
// separate output projection should follow.
func (tp *Tape) MaskedMHA(q, k, v *Tensor, heads int, counts []int) *Attention {
	b := q.W.Rows
	d := q.W.Cols
	if d%heads != 0 {
		panic(fmt.Sprintf("nn: MaskedMHA dim %d not divisible by %d heads", d, heads))
	}
	if k.W.Cols != d || v.W.Cols != d {
		panic(fmt.Sprintf("nn: MaskedMHA key/value dim %d/%d, want %d", k.W.Cols, v.W.Cols, d))
	}
	if b == 0 {
		panic("nn: MaskedMHA with zero queries")
	}
	if k.W.Rows != v.W.Rows || k.W.Rows%b != 0 {
		panic(fmt.Sprintf("nn: MaskedMHA %d keys for %d queries", k.W.Rows, b))
	}
	slots := k.W.Rows / b
	if len(counts) != b {
		panic(fmt.Sprintf("nn: MaskedMHA %d counts for %d queries", len(counts), b))
	}
	dh := d / heads
	scale := 1 / tensor.Sqrt32(float32(dh))

	out := tp.newResult(b, d, q, k, v)
	// Pool-backed on pooled tapes: the weights live until Reset, and
	// core.Model copies them out for Explain before the tape is recycled.
	weights := tp.scratch(b * heads * slots)

	for qi := 0; qi < b; qi++ {
		n := counts[qi]
		if n <= 0 {
			continue
		}
		if n > slots {
			panic(fmt.Sprintf("nn: MaskedMHA count %d exceeds %d slots", n, slots))
		}
		qrow := q.W.Row(qi)
		orow := out.W.Row(qi)
		for h := 0; h < heads; h++ {
			lo := h * dh
			qh := qrow[lo : lo+dh]
			w := weights[(qi*heads+h)*slots : (qi*heads+h)*slots+slots]
			// Scores over valid slots.
			for i := 0; i < n; i++ {
				kh := k.W.Row(qi*slots + i)[lo : lo+dh]
				w[i] = tensor.Dot(qh, kh) * scale
			}
			tensor.SoftmaxRow(w[:n])
			// Weighted value sum.
			oh := orow[lo : lo+dh]
			for i := 0; i < n; i++ {
				vh := v.W.Row(qi*slots + i)[lo : lo+dh]
				tensor.Axpy(oh, vh, w[i])
			}
		}
	}

	if out.needGrad {
		// dα scratch for the backward pass (one slot-wide buffer reused
		// across every (query, head) iteration; see backward.go).
		out.op, out.a, out.b, out.c = opMaskedMHA, q, k, v
		out.i0, out.i1, out.sc = heads, slots, scale
		out.f0, out.f1, out.cnts = weights, tp.scratch(slots), counts
	}
	tp.record(out)
	att := tp.newAttention()
	att.Out, att.Weights, att.heads, att.slots = out, weights, heads, slots
	return att
}
