package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// BCEWithLogits returns the mean binary cross-entropy between the n×1 logits
// and targets (each in [0,1]), computed in the numerically stable form
// max(x,0) − x·y + log(1+e^{−|x|}).
func (tp *Tape) BCEWithLogits(logits *Tensor, targets []float32) *Tensor {
	if logits.W.Cols != 1 || logits.W.Rows != len(targets) {
		panic(fmt.Sprintf("nn: BCEWithLogits logits %dx%d for %d targets", logits.W.Rows, logits.W.Cols, len(targets)))
	}
	n := len(targets)
	if n == 0 {
		panic("nn: BCEWithLogits with no targets")
	}
	out := tp.newResultRaw(1, 1, logits)
	var sum float32
	for i, y := range targets {
		x := logits.W.Data[i]
		ax := x
		mx := x
		if ax < 0 {
			ax = -ax
		}
		if mx < 0 {
			mx = 0
		}
		sum += mx - x*y + tensor.Log32(1+tensor.Exp32(-ax))
	}
	out.W.Data[0] = sum / float32(n)
	if out.needGrad {
		out.op, out.a, out.f0 = opBCE, logits, targets
	}
	return tp.record(out)
}

// MSE returns the mean squared error between pred and the constant target
// matrix (same shape).
func (tp *Tape) MSE(pred *Tensor, target *tensor.Matrix) *Tensor {
	if pred.W.Rows != target.Rows || pred.W.Cols != target.Cols {
		panic(fmt.Sprintf("nn: MSE shape mismatch %dx%d vs %dx%d", pred.W.Rows, pred.W.Cols, target.Rows, target.Cols))
	}
	n := len(pred.W.Data)
	if n == 0 {
		panic("nn: MSE of empty tensor")
	}
	out := tp.newResultRaw(1, 1, pred)
	var sum float32
	for i, v := range pred.W.Data {
		d := v - target.Data[i]
		sum += d * d
	}
	out.W.Data[0] = sum / float32(n)
	if out.needGrad {
		out.op, out.a, out.aux = opMSE, pred, target
	}
	return tp.record(out)
}
