package nn

import (
	"math"
	"math/rand"
)

// Layer is any module that exposes its trainable parameters.
type Layer interface {
	Params() []*Tensor
}

// CollectParams flattens the parameters of several layers.
func CollectParams(layers ...Layer) []*Tensor {
	var ps []*Tensor
	for _, l := range layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *Tensor // in×out
	B *Tensor // 1×out
}

// NewLinear builds a Glorot-initialized in→out linear layer. A nil rng
// builds a storage-free shell to be bound to a ParamSet (see ParamShell).
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	if rng == nil {
		return &Linear{W: ParamShell(in, out), B: ParamShell(1, out)}
	}
	l := &Linear{W: Param(in, out), B: Param(1, out)}
	l.W.W.XavierInit(rng)
	return l
}

// Forward applies the layer on tape tp.
func (l *Linear) Forward(tp *Tape, x *Tensor) *Tensor {
	return tp.AddRowVec(tp.MatMul(x, l.W), l.B)
}

// Params returns the layer's trainable tensors.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// MLP is a two-layer feed-forward network with a ReLU hidden activation, the
// shape used throughout the paper (hidden size 80).
type MLP struct {
	L1, L2  *Linear
	Dropout float32
}

// NewMLP builds an in→hidden→out MLP.
func NewMLP(in, hidden, out int, dropout float32, rng *rand.Rand) *MLP {
	return &MLP{L1: NewLinear(in, hidden, rng), L2: NewLinear(hidden, out, rng), Dropout: dropout}
}

// Forward applies the MLP on tape tp.
func (m *MLP) Forward(tp *Tape, x *Tensor) *Tensor {
	h := tp.ReLU(m.L1.Forward(tp, x))
	h = tp.Dropout(h, m.Dropout)
	return m.L2.Forward(tp, h)
}

// Params returns the MLP's trainable tensors.
func (m *MLP) Params() []*Tensor { return append(m.L1.Params(), m.L2.Params()...) }

// LayerNorm is a learnable layer-normalization module.
type LayerNorm struct {
	Gain, Bias *Tensor
}

// NewLayerNorm builds a layer norm over dim columns with unit gain.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Gain: Param(1, dim), Bias: Param(1, dim)}
	ln.Gain.W.Fill(1)
	return ln
}

// Forward normalizes each row of x.
func (ln *LayerNorm) Forward(tp *Tape, x *Tensor) *Tensor {
	return tp.LayerNormOp(x, ln.Gain, ln.Bias)
}

// Params returns the module's trainable tensors.
func (ln *LayerNorm) Params() []*Tensor { return []*Tensor{ln.Gain, ln.Bias} }

// MultiHeadAttention is the projected scaled dot-product attention block:
// Q=qW_Q, K=kW_K, V=vW_V, fused masked attention, then output projection W_O
// (paper eqs. 3–4).
type MultiHeadAttention struct {
	WQ, WK, WV, WO *Linear
	Heads          int
}

// NewMultiHeadAttention builds an attention block over model dimension dim.
func NewMultiHeadAttention(dim, heads int, rng *rand.Rand) *MultiHeadAttention {
	return &MultiHeadAttention{
		WQ:    NewLinear(dim, dim, rng),
		WK:    NewLinear(dim, dim, rng),
		WV:    NewLinear(dim, dim, rng),
		WO:    NewLinear(dim, dim, rng),
		Heads: heads,
	}
}

// Forward attends each query row over its block of key/value slots; counts
// masks invalid slots per query. It returns the projected output and the raw
// attention for interpretability.
func (a *MultiHeadAttention) Forward(tp *Tape, q, kv *Tensor, counts []int) (*Tensor, *Attention) {
	att := tp.MaskedMHA(a.WQ.Forward(tp, q), a.WK.Forward(tp, kv), a.WV.Forward(tp, kv), a.Heads, counts)
	return a.WO.Forward(tp, att.Out), att
}

// Params returns the block's trainable tensors.
func (a *MultiHeadAttention) Params() []*Tensor {
	return CollectParams(a.WQ, a.WK, a.WV, a.WO)
}

// PositionTable is the learned positional-encoding table P ∈ R^{slots×dim}
// added to the mailbox before attention (paper eq. 2).
type PositionTable struct {
	P *Tensor
}

// NewPositionTable builds a small-variance random position table. A nil rng
// builds a storage-free shell to be bound to a ParamSet.
func NewPositionTable(slots, dim int, rng *rand.Rand) *PositionTable {
	if rng == nil {
		return &PositionTable{P: ParamShell(slots, dim)}
	}
	pt := &PositionTable{P: Param(slots, dim)}
	pt.P.W.RandN(rng, 0.02)
	return pt
}

// Forward adds the table to each block of slots rows in x ((B·slots)×dim).
func (pt *PositionTable) Forward(tp *Tape, x *Tensor) *Tensor {
	return tp.AddRowsTiled(x, pt.P)
}

// Params returns the table parameter.
func (pt *PositionTable) Params() []*Tensor { return []*Tensor{pt.P} }

// TimeEncoder is the learnable harmonic time-embedding Φ(Δt)=cos(ωΔt+φ) used
// by TGAT/TGN and by APAN's PositionalTime mode.
type TimeEncoder struct {
	Omega, Phi *Tensor
}

// NewTimeEncoder builds a dim-dimensional time encoder with log-spaced
// initial frequencies, following the TGAT reference implementation. A nil
// rng builds a storage-free shell to be bound to a ParamSet.
func NewTimeEncoder(dim int, rng *rand.Rand) *TimeEncoder {
	if rng == nil {
		return &TimeEncoder{Omega: ParamShell(1, dim), Phi: ParamShell(1, dim)}
	}
	te := &TimeEncoder{Omega: Param(1, dim), Phi: Param(1, dim)}
	for j := 0; j < dim; j++ {
		// Frequencies 1/10^(j·9/dim) span ~[1, 1e-9]·(1+noise).
		te.Omega.W.Data[j] = float32(1.0 / math.Pow(10, float64(j)*9.0/float64(dim)))
	}
	te.Phi.W.RandN(rng, 0.1)
	return te
}

// Forward encodes the time deltas.
func (te *TimeEncoder) Forward(tp *Tape, dts []float32) *Tensor {
	return tp.TimeEncode(dts, te.Omega, te.Phi)
}

// Params returns the encoder's trainable tensors.
func (te *TimeEncoder) Params() []*Tensor { return []*Tensor{te.Omega, te.Phi} }

// GRUCell is a gated recurrent unit used by the TGN and JODIE baselines to
// update node memories.
type GRUCell struct {
	WxR, WhR *Linear
	WxZ, WhZ *Linear
	WxN, WhN *Linear
}

// NewGRUCell builds a GRU with input size in and hidden size hid.
func NewGRUCell(in, hid int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		WxR: NewLinear(in, hid, rng), WhR: NewLinear(hid, hid, rng),
		WxZ: NewLinear(in, hid, rng), WhZ: NewLinear(hid, hid, rng),
		WxN: NewLinear(in, hid, rng), WhN: NewLinear(hid, hid, rng),
	}
}

// Forward computes the next hidden state for each row of (x, h).
func (g *GRUCell) Forward(tp *Tape, x, h *Tensor) *Tensor {
	r := tp.Sigmoid(tp.Add(g.WxR.Forward(tp, x), g.WhR.Forward(tp, h)))
	z := tp.Sigmoid(tp.Add(g.WxZ.Forward(tp, x), g.WhZ.Forward(tp, h)))
	n := tp.Tanh(tp.Add(g.WxN.Forward(tp, x), tp.Mul(r, g.WhN.Forward(tp, h))))
	// h' = (1−z)⊙n + z⊙h
	oneMinusZ := tp.AddConst(tp.Scale(z, -1), 1)
	return tp.Add(tp.Mul(oneMinusZ, n), tp.Mul(z, h))
}

// Params returns the cell's trainable tensors.
func (g *GRUCell) Params() []*Tensor {
	return CollectParams(g.WxR, g.WhR, g.WxZ, g.WhZ, g.WxN, g.WhN)
}
