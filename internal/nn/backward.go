package nn

import "apan/internal/tensor"

// opKind identifies which operation produced a tensor, so Backward can
// dispatch its gradient rule through one switch instead of invoking a
// per-node closure. Every case in stepBack is a verbatim transcription of
// the closure it replaced — the float arithmetic and its order are
// unchanged, keeping training bit-exact with the closure-based tape.
type opKind uint8

const (
	opNone opKind = iota
	opMatMul
	opAdd
	opSub
	opMulElem
	opScale
	opAddConst
	opScalarAffine
	opAddRowVec
	opMulRowVec
	opAddRowsTiled
	opConcatCols
	opSliceCols
	opReLU
	opLeakyReLU
	opSigmoid
	opTanh
	opExp
	opSquare
	opDropout
	opSumAll
	opGather
	opSegmentMean
	opOverlayRows
	opRowDot
	opMaskedMHA
	opLayerNorm
	opBCE
	opMSE
	opTimeEncode
	opSpMM
)

// stepBack accumulates the gradients of out's operands from out.G. Callers
// (Tape.Backward) guarantee out.op != opNone, out.needGrad, and out.G != nil.
func (tp *Tape) stepBack(out *Tensor) {
	switch out.op {
	case opMatMul:
		a, b := out.a, out.b
		if a.needGrad {
			if tp.training && tensor.HasAsmGemm() {
				// dA += dOut·Bᵀ as a plain GEMM: materializing Bᵀ in tape
				// scratch costs K·N copies against M·K·N multiply-adds, and
				// lets the 8-lane FMA kernel run instead of the dot4 loop.
				bt := &tp.tmT
				bt.Rows, bt.Cols = b.W.Cols, b.W.Rows
				bt.Data = tp.scratch(len(b.W.Data))
				tensor.TransposeInto(bt, b.W)
				tensor.FastMatMulAcc(a.Grad(), out.G, bt)
			} else {
				tensor.MatMulBTAcc(a.Grad(), out.G, b.W) // dA += dOut·Bᵀ
			}
		}
		if b.needGrad {
			if tp.training && tensor.HasAsmGemm() {
				at := &tp.tmT
				at.Rows, at.Cols = a.W.Cols, a.W.Rows
				at.Data = tp.scratch(len(a.W.Data))
				tensor.TransposeInto(at, a.W)
				tensor.FastMatMulAcc(b.Grad(), at, out.G)
			} else {
				tensor.MatMulATAcc(b.Grad(), a.W, out.G) // dB += Aᵀ·dOut
			}
		}

	case opAdd:
		if out.a.needGrad {
			out.a.Grad().Add(out.G)
		}
		if out.b.needGrad {
			out.b.Grad().Add(out.G)
		}

	case opSub:
		if out.a.needGrad {
			out.a.Grad().Add(out.G)
		}
		if out.b.needGrad {
			out.b.Grad().AddScaled(out.G, -1)
		}

	case opMulElem:
		a, b := out.a, out.b
		if a.needGrad {
			g := a.Grad()
			for i, v := range out.G.Data {
				g.Data[i] += v * b.W.Data[i]
			}
		}
		if b.needGrad {
			g := b.Grad()
			for i, v := range out.G.Data {
				g.Data[i] += v * a.W.Data[i]
			}
		}

	case opScale:
		if out.a.needGrad {
			out.a.Grad().AddScaled(out.G, out.sc)
		}

	case opAddConst:
		if out.a.needGrad {
			out.a.Grad().Add(out.G)
		}

	case opScalarAffine:
		a, g, b := out.a, out.b, out.c
		gv := out.sc // gain value captured at forward time
		if a.needGrad {
			a.Grad().AddScaled(out.G, gv)
		}
		if g.needGrad {
			var s float32
			for i, v := range out.G.Data {
				s += v * a.W.Data[i]
			}
			g.Grad().Data[0] += s
		}
		if b.needGrad {
			var s float32
			for _, v := range out.G.Data {
				s += v
			}
			b.Grad().Data[0] += s
		}

	case opAddRowVec:
		a, v := out.a, out.b
		if a.needGrad {
			a.Grad().Add(out.G)
		}
		if v.needGrad {
			g := v.Grad().Data
			for r := 0; r < out.G.Rows; r++ {
				row := out.G.Row(r)
				for j, gv := range row {
					g[j] += gv
				}
			}
		}

	case opMulRowVec:
		a, v := out.a, out.b
		for r := 0; r < out.G.Rows; r++ {
			gr := out.G.Row(r)
			if a.needGrad {
				ag := a.Grad().Row(r)
				for j, gv := range gr {
					ag[j] += gv * v.W.Data[j]
				}
			}
			if v.needGrad {
				vg := v.Grad().Data
				ar := a.W.Row(r)
				for j, gv := range gr {
					vg[j] += gv * ar[j]
				}
			}
		}

	case opAddRowsTiled:
		a, p := out.a, out.b
		m := p.W.Rows
		if a.needGrad {
			a.Grad().Add(out.G)
		}
		if p.needGrad {
			pg := p.Grad()
			for r := 0; r < out.G.Rows; r++ {
				tensor.Axpy(pg.Row(r%m), out.G.Row(r), 1)
			}
		}

	case opConcatCols:
		a, b := out.a, out.b
		ac := out.i0
		for r := 0; r < out.G.Rows; r++ {
			src := out.G.Row(r)
			if a.needGrad {
				tensor.Axpy(a.Grad().Row(r), src[:ac], 1)
			}
			if b.needGrad {
				tensor.Axpy(b.Grad().Row(r), src[ac:], 1)
			}
		}

	case opSliceCols:
		if out.a.needGrad {
			lo, hi := out.i0, out.i1
			g := out.a.Grad()
			for r := 0; r < out.G.Rows; r++ {
				tensor.Axpy(g.Row(r)[lo:hi], out.G.Row(r), 1)
			}
		}

	case opReLU:
		a := out.a
		if a.needGrad {
			g := a.Grad()
			for i, v := range out.G.Data {
				if a.W.Data[i] > 0 {
					g.Data[i] += v
				}
			}
		}

	case opLeakyReLU:
		a := out.a
		if a.needGrad {
			slope := out.sc
			g := a.Grad()
			for i, v := range out.G.Data {
				if a.W.Data[i] > 0 {
					g.Data[i] += v
				} else {
					g.Data[i] += slope * v
				}
			}
		}

	case opSigmoid:
		if out.a.needGrad {
			g := out.a.Grad()
			for i, v := range out.G.Data {
				s := out.W.Data[i]
				g.Data[i] += v * s * (1 - s)
			}
		}

	case opTanh:
		if out.a.needGrad {
			g := out.a.Grad()
			for i, v := range out.G.Data {
				t := out.W.Data[i]
				g.Data[i] += v * (1 - t*t)
			}
		}

	case opExp:
		if out.a.needGrad {
			g := out.a.Grad()
			for i, v := range out.G.Data {
				g.Data[i] += v * out.W.Data[i]
			}
		}

	case opSquare:
		a := out.a
		if a.needGrad {
			g := a.Grad()
			for i, v := range out.G.Data {
				g.Data[i] += 2 * v * a.W.Data[i]
			}
		}

	case opDropout:
		if out.a.needGrad {
			mask := out.f0
			g := out.a.Grad()
			for i, v := range out.G.Data {
				g.Data[i] += v * mask[i]
			}
		}

	case opSumAll:
		if out.a.needGrad {
			g := out.a.Grad()
			gv := out.G.Data[0]
			for i := range g.Data {
				g.Data[i] += gv
			}
		}

	case opGather:
		if out.a.needGrad {
			g := out.a.Grad()
			for r, id := range out.idx {
				tensor.Axpy(g.Row(int(id)), out.G.Row(r), 1)
			}
		}

	case opSegmentMean:
		if out.a.needGrad {
			counts := out.f0
			g := out.a.Grad()
			for r, s := range out.idx {
				tensor.Axpy(g.Row(r), out.G.Row(int(s)), 1/counts[s])
			}
		}

	case opOverlayRows:
		base, overlay := out.a, out.b
		winner := out.idx
		for r := 0; r < out.G.Rows; r++ {
			if w := winner[r]; w >= 0 {
				if overlay.needGrad {
					tensor.Axpy(overlay.Grad().Row(int(w)), out.G.Row(r), 1)
				}
			} else if base.needGrad {
				tensor.Axpy(base.Grad().Row(r), out.G.Row(r), 1)
			}
		}

	case opRowDot:
		a, b := out.a, out.b
		for r := 0; r < out.G.Rows; r++ {
			gv := out.G.Data[r]
			if a.needGrad {
				tensor.Axpy(a.Grad().Row(r), b.W.Row(r), gv)
			}
			if b.needGrad {
				tensor.Axpy(b.Grad().Row(r), a.W.Row(r), gv)
			}
		}

	case opMaskedMHA:
		q, k, v := out.a, out.b, out.c
		heads, slots := out.i0, out.i1
		scale := out.sc
		weights, dalpha := out.f0, out.f1
		counts := out.cnts
		b := q.W.Rows
		dh := q.W.Cols / heads
		for qi := 0; qi < b; qi++ {
			n := counts[qi]
			if n <= 0 {
				continue
			}
			qrow := q.W.Row(qi)
			grow := out.G.Row(qi)
			for h := 0; h < heads; h++ {
				lo := h * dh
				qh := qrow[lo : lo+dh]
				gh := grow[lo : lo+dh]
				w := weights[(qi*heads+h)*slots : (qi*heads+h)*slots+slots]
				// dα_i = gh·v_i ; ds_i = α_i (dα_i − Σ_j α_j dα_j).
				// dalpha is forward-drawn scratch: every entry [0,n) is
				// written before it is read, so reuse across (query, head)
				// iterations is exact.
				var dot float32
				for i := 0; i < n; i++ {
					vh := v.W.Row(qi*slots + i)[lo : lo+dh]
					dalpha[i] = tensor.Dot(gh, vh)
					dot += w[i] * dalpha[i]
				}
				for i := 0; i < n; i++ {
					ds := w[i] * (dalpha[i] - dot) * scale
					if q.needGrad {
						kh := k.W.Row(qi*slots + i)[lo : lo+dh]
						tensor.Axpy(q.Grad().Row(qi)[lo:lo+dh], kh, ds)
					}
					if k.needGrad {
						tensor.Axpy(k.Grad().Row(qi*slots + i)[lo:lo+dh], qh, ds)
					}
					if v.needGrad {
						tensor.Axpy(v.Grad().Row(qi*slots + i)[lo:lo+dh], gh, w[i])
					}
				}
			}
		}

	case opLayerNorm:
		x, g, b := out.a, out.b, out.c
		xhat := out.aux
		invStd := out.f0
		dxhat := out.f1
		d := x.W.Cols
		n := float32(d)
		for r := 0; r < out.G.Rows; r++ {
			gr := out.G.Row(r)
			xh := xhat.Row(r)
			if g.needGrad {
				gg := g.Grad().Data
				for j, gv := range gr {
					gg[j] += gv * xh[j]
				}
			}
			if b.needGrad {
				bg := b.Grad().Data
				for j, gv := range gr {
					bg[j] += gv
				}
			}
			if x.needGrad {
				// dxhat = dy ⊙ g; dx = invStd (dxhat − mean(dxhat) − xhat·mean(dxhat⊙xhat)).
				// dxhat is forward-drawn scratch, fully rewritten per row.
				var sum, sumXh float32
				for j, gv := range gr {
					dx := gv * g.W.Data[j]
					dxhat[j] = dx
					sum += dx
					sumXh += dx * xh[j]
				}
				mean := sum / n
				meanXh := sumXh / n
				xg := x.Grad().Row(r)
				is := invStd[r]
				for j, dx := range dxhat {
					xg[j] += is * (dx - mean - xh[j]*meanXh)
				}
			}
		}

	case opBCE:
		if out.a.needGrad {
			targets := out.f0
			logits := out.a
			g := logits.Grad()
			gv := out.G.Data[0] / float32(len(targets))
			for i, y := range targets {
				g.Data[i] += gv * (tensor.Sigmoid32(logits.W.Data[i]) - y)
			}
		}

	case opMSE:
		if out.a.needGrad {
			pred := out.a
			target := out.aux
			g := pred.Grad()
			gv := out.G.Data[0] * 2 / float32(len(pred.W.Data))
			for i, v := range pred.W.Data {
				g.Data[i] += gv * (v - target.Data[i])
			}
		}

	case opTimeEncode:
		omega, phi := out.a, out.b
		dts := out.f0
		og := omega.Grad()
		pg := phi.Grad()
		for i, dt := range dts {
			gr := out.G.Row(i)
			for j, gv := range gr {
				s := -tensor.Sin32(omega.W.Data[j]*dt+phi.W.Data[j]) * gv
				if omega.needGrad {
					og.Data[j] += s * dt
				}
				if phi.needGrad {
					pg.Data[j] += s
				}
			}
		}

	case opSpMM:
		if out.a.needGrad {
			x := out.a
			s := out.sp
			tmp := tensor.New(s.N, x.W.Cols)
			s.MulDense(tmp, out.G)
			x.Grad().Add(tmp)
		}
	}
}
