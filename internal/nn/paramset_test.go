package nn

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"apan/internal/tensor"
)

func randomParams(rng *rand.Rand, n int) []*Tensor {
	ps := make([]*Tensor, n)
	for i := range ps {
		p := Param(1+rng.Intn(5), 1+rng.Intn(7))
		p.W.RandN(rng, 1)
		ps[i] = p
	}
	return ps
}

// TestParamSetSnapshotIsolation: a snapshot must be a deep copy — stepping
// the source parameters afterwards (what a trainer does) must not change the
// published values or their fingerprint.
func TestParamSetSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := randomParams(rng, 4)
	ps := NewParamSet(3, params)
	if ps.Version() != 3 {
		t.Fatalf("version %d, want 3", ps.Version())
	}
	before := ps.Fingerprint()
	for _, p := range params {
		p.W.Fill(42)
	}
	if got := ps.RecomputeFingerprint(); got != before {
		t.Fatalf("snapshot mutated by source update: fingerprint %016x -> %016x", before, got)
	}
}

// TestParamSetFromAliasesUnchanged: an incremental snapshot must alias the
// previous set's matrices for untouched tensors, clone touched ones, and
// carry a fingerprint identical to the full-clone snapshot of the same
// values — so no_torn_params cannot tell the two publish paths apart.
func TestParamSetFromAliasesUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	params := randomParams(rng, 5)
	prev := NewParamSet(1, params)

	// Trainer touches tensors 1 and 3 only.
	params[1].W.Data[0] += 0.5
	params[3].W.Fill(-2)

	inc := NewParamSetFrom(2, params, prev)
	full := NewParamSet(2, params)
	if inc.Fingerprint() != full.Fingerprint() {
		t.Fatalf("incremental fingerprint %016x, full-clone %016x", inc.Fingerprint(), full.Fingerprint())
	}
	if inc.Fingerprint() != inc.RecomputeFingerprint() {
		t.Fatal("incremental snapshot fails its own torn-params re-hash")
	}
	for i := range params {
		aliased := inc.Value(i) == prev.Value(i)
		touched := i == 1 || i == 3
		if touched && aliased {
			t.Fatalf("tensor %d was touched but aliased to the previous set", i)
		}
		if !touched && !aliased {
			t.Fatalf("tensor %d was untouched but cloned", i)
		}
		if inc.Value(i) == params[i].W {
			t.Fatalf("tensor %d aliases the trainer's mutable matrix", i)
		}
	}

	// Stepping the trainer copy afterwards must not leak into either set.
	before := inc.Fingerprint()
	for _, p := range params {
		p.W.Fill(42)
	}
	if inc.RecomputeFingerprint() != before {
		t.Fatal("incremental snapshot mutated by source update")
	}
	if prev.RecomputeFingerprint() != prev.Fingerprint() {
		t.Fatal("previous snapshot mutated by source update")
	}

	// Degenerate inputs fall back to a full clone.
	if got := NewParamSetFrom(3, params, nil).Fingerprint(); got != NewParamSet(3, params).Fingerprint() {
		t.Fatalf("nil-prev fallback fingerprint %016x", got)
	}
	short := NewParamSet(1, params[:3])
	if got := NewParamSetFrom(3, params, short).Fingerprint(); got != NewParamSet(3, params).Fingerprint() {
		t.Fatalf("layout-mismatch fallback fingerprint %016x", got)
	}
}

// TestParamShellBinds: a shell parameter carries shape but no storage, and
// binding it to a set makes it indistinguishable from a bound full Param.
func TestParamShellBinds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	params := randomParams(rng, 3)
	ps := NewParamSet(1, params)
	shells := make([]*Tensor, len(params))
	for i, p := range params {
		shells[i] = ParamShell(p.W.Rows, p.W.Cols)
		if shells[i].W.Data != nil || shells[i].G != nil {
			t.Fatalf("shell %d allocated storage", i)
		}
	}
	if err := BindParams(shells, ps); err != nil {
		t.Fatal(err)
	}
	for i, s := range shells {
		if s.W != ps.Value(i) {
			t.Fatalf("shell %d not aliased to the set's matrix", i)
		}
	}
}

// TestParamSetCopyToRoundTrip: CopyTo into a fresh parameter list must
// reproduce the snapshot bitwise, and shape mismatches must be rejected.
func TestParamSetCopyToRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	params := randomParams(rng, 5)
	ps := NewParamSet(1, params)

	dst := make([]*Tensor, len(params))
	for i, p := range params {
		dst[i] = Param(p.W.Rows, p.W.Cols)
	}
	if err := ps.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	if got := NewParamSet(1, dst).Fingerprint(); got != ps.Fingerprint() {
		t.Fatalf("CopyTo changed values: %016x vs %016x", got, ps.Fingerprint())
	}

	bad := append(append([]*Tensor(nil), dst...), Param(1, 1))
	if err := ps.CopyTo(bad); err == nil {
		t.Fatal("CopyTo accepted a longer parameter list")
	}
	dst[0] = Param(dst[0].W.Rows+1, dst[0].W.Cols)
	if err := ps.CopyTo(dst); err == nil {
		t.Fatal("CopyTo accepted a shape mismatch")
	}
}

// TestBindParamsAliases: bound tensors must read the snapshot's storage
// directly (zero copy), so a forward pass over them sees exactly one version.
func TestBindParamsAliases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := randomParams(rng, 3)
	ps := NewParamSet(1, params)
	bound := make([]*Tensor, len(params))
	for i, p := range params {
		bound[i] = Param(p.W.Rows, p.W.Cols)
	}
	if err := BindParams(bound, ps); err != nil {
		t.Fatal(err)
	}
	for i, b := range bound {
		if b.W != ps.Value(i) {
			t.Fatalf("param %d not aliased to the set's matrix", i)
		}
	}
}

// TestQuickParamSetSaveLoadRoundTrip: a published ParamSet serialized with
// Save and read back with LoadParams must round-trip bit-exactly, for
// arbitrary shapes and values (including negative zero and denormals scaled
// down from random normals).
func TestQuickParamSetSaveLoadRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		params := randomParams(rng, 1+int(nRaw%6))
		// Exercise special values: flip signs, zero a few entries.
		for _, p := range params {
			for j := range p.W.Data {
				switch rng.Intn(8) {
				case 0:
					p.W.Data[j] = 0
				case 1:
					p.W.Data[j] = float32(math32Copysign(0, -1))
				case 2:
					p.W.Data[j] *= 1e-30
				}
			}
		}
		ps := NewParamSet(7, params)

		var buf bytes.Buffer
		if err := ps.Save(&buf); err != nil {
			t.Log(err)
			return false
		}
		dst := make([]*Tensor, len(params))
		for i, p := range params {
			dst[i] = Param(p.W.Rows, p.W.Cols)
		}
		if err := LoadParams(&buf, dst); err != nil {
			t.Log(err)
			return false
		}
		if got := NewParamSet(7, dst).Fingerprint(); got != ps.Fingerprint() {
			t.Logf("round-trip fingerprint %016x, want %016x", got, ps.Fingerprint())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func math32Copysign(x, sign float32) float32 {
	if sign < 0 {
		return -x
	}
	return x
}

// TestReusableTrainingTapeSteadyState: after warm-up, repeated
// forward/backward passes on a reusable training tape must recycle their
// matrix storage through the pool (pool misses stop growing).
func TestReusableTrainingTapeSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pool tensor.Pool
	tp := NewReusableTrainingTape(&pool, rng)
	lin := NewLinear(8, 8, rng)
	x := tensor.New(16, 8)
	x.RandN(rng, 1)
	target := make([]float32, 16)

	step := func() {
		tp.Reset()
		out := lin.Forward(tp, tp.Input(x))
		loss := tp.BCEWithLogits(tp.RowDot(out, out), target)
		tp.Backward(loss)
		for _, p := range lin.Params() {
			p.ZeroGrad()
		}
	}
	for i := 0; i < 3; i++ {
		step()
	}
	_, missesBefore := pool.Stats()
	for i := 0; i < 10; i++ {
		step()
	}
	if _, misses := pool.Stats(); misses != missesBefore {
		t.Fatalf("steady-state training pass missed the pool %d times", misses-missesBefore)
	}
}
