// Package nn implements the neural-network substrate for APAN and its
// baselines: a tape-based reverse-mode autograd engine over dense float32
// matrices, the layers the paper's models need (linear, MLP, layer norm,
// masked multi-head attention, time encoding, GRU cell), losses, and the
// Adam optimizer. Gradients of every operation are covered by
// finite-difference checks in the test suite.
//
// Concurrency: layers hold only parameters, and forward passes write all
// intermediate state to their per-call Tape, so any number of inference
// (non-training) forward passes may run concurrently over shared
// parameters. Training is not concurrent: Backward and the optimizer
// mutate parameter gradients in place.
package nn
