package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// Every op guards its backward-closure construction behind out.needGrad:
// the closure is a heap allocation, and on inference tapes (nograd) no
// output ever needs gradients, which is what makes a warm pooled forward
// pass allocation-free. On grad-enabled tapes the guard is a no-op change:
// Backward only ever invokes back() on tensors with needGrad set.

// MatMul returns a·b.
func (tp *Tape) MatMul(a, b *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, b.W.Cols, a, b)
	tensor.MatMul(out.W, a.W, b.W)
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				tensor.MatMulBTAcc(a.Grad(), out.G, b.W) // dA += dOut·Bᵀ
			}
			if b.needGrad {
				tensor.MatMulATAcc(b.Grad(), a.W, out.G) // dB += Aᵀ·dOut
			}
		}
	}
	return tp.record(out)
}

// Add returns a+b element-wise (same shape).
func (tp *Tape) Add(a, b *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, b)
	tensor.AddScaledTo(out.W.Data, a.W.Data, b.W.Data, 1)
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				a.Grad().Add(out.G)
			}
			if b.needGrad {
				b.Grad().Add(out.G)
			}
		}
	}
	return tp.record(out)
}

// Sub returns a−b element-wise.
func (tp *Tape) Sub(a, b *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, b)
	tensor.AddScaledTo(out.W.Data, a.W.Data, b.W.Data, -1)
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				a.Grad().Add(out.G)
			}
			if b.needGrad {
				b.Grad().AddScaled(out.G, -1)
			}
		}
	}
	return tp.record(out)
}

// Mul returns a⊙b element-wise.
func (tp *Tape) Mul(a, b *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, b)
	bd := b.W.Data
	for i, v := range a.W.Data {
		out.W.Data[i] = v * bd[i]
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					g.Data[i] += v * b.W.Data[i]
				}
			}
			if b.needGrad {
				g := b.Grad()
				for i, v := range out.G.Data {
					g.Data[i] += v * a.W.Data[i]
				}
			}
		}
	}
	return tp.record(out)
}

// Scale returns s·a.
func (tp *Tape) Scale(a *Tensor, s float32) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = v * s
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				a.Grad().AddScaled(out.G, s)
			}
		}
	}
	return tp.record(out)
}

// AddConst returns a+c element-wise.
func (tp *Tape) AddConst(a *Tensor, c float32) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = v + c
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				a.Grad().Add(out.G)
			}
		}
	}
	return tp.record(out)
}

// ScalarAffine returns g·a + b element-wise, where g and b are 1×1 tensors
// broadcast over a — the calibrated-decoder head fused into one op (the
// Gather-broadcast formulation it replaces allocated an index slice and two
// intermediate matrices per call).
func (tp *Tape) ScalarAffine(a, g, b *Tensor) *Tensor {
	if g.W.Rows != 1 || g.W.Cols != 1 || b.W.Rows != 1 || b.W.Cols != 1 {
		panic(fmt.Sprintf("nn: ScalarAffine gain/bias must be 1x1, got %dx%d and %dx%d",
			g.W.Rows, g.W.Cols, b.W.Rows, b.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, g, b)
	gv, bv := g.W.Data[0], b.W.Data[0]
	for i, v := range a.W.Data {
		out.W.Data[i] = v*gv + bv
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				a.Grad().AddScaled(out.G, gv)
			}
			if g.needGrad {
				var s float32
				for i, v := range out.G.Data {
					s += v * a.W.Data[i]
				}
				g.Grad().Data[0] += s
			}
			if b.needGrad {
				var s float32
				for _, v := range out.G.Data {
					s += v
				}
				b.Grad().Data[0] += s
			}
		}
	}
	return tp.record(out)
}

// AddRowVec broadcasts the 1×cols vector v across the rows of a.
func (tp *Tape) AddRowVec(a, v *Tensor) *Tensor {
	if v.W.Rows != 1 || v.W.Cols != a.W.Cols {
		panic(fmt.Sprintf("nn: AddRowVec wants 1x%d vector, got %dx%d", a.W.Cols, v.W.Rows, v.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, v)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		src := a.W.Row(r)
		for j, b := range v.W.Data {
			dst[j] = src[j] + b
		}
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				a.Grad().Add(out.G)
			}
			if v.needGrad {
				g := v.Grad().Data
				for r := 0; r < out.G.Rows; r++ {
					row := out.G.Row(r)
					for j, gv := range row {
						g[j] += gv
					}
				}
			}
		}
	}
	return tp.record(out)
}

// MulRowVec broadcasts the 1×cols vector v multiplicatively across the rows
// of a: out[i][j] = a[i][j] · v[j].
func (tp *Tape) MulRowVec(a, v *Tensor) *Tensor {
	if v.W.Rows != 1 || v.W.Cols != a.W.Cols {
		panic(fmt.Sprintf("nn: MulRowVec wants 1x%d vector, got %dx%d", a.W.Cols, v.W.Rows, v.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, v)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		src := a.W.Row(r)
		for j, m := range v.W.Data {
			dst[j] = src[j] * m
		}
	}
	if out.needGrad {
		out.back = func() {
			for r := 0; r < out.G.Rows; r++ {
				gr := out.G.Row(r)
				if a.needGrad {
					ag := a.Grad().Row(r)
					for j, gv := range gr {
						ag[j] += gv * v.W.Data[j]
					}
				}
				if v.needGrad {
					vg := v.Grad().Data
					ar := a.W.Row(r)
					for j, gv := range gr {
						vg[j] += gv * ar[j]
					}
				}
			}
		}
	}
	return tp.record(out)
}

// AddRowsTiled adds the m×d matrix p to a (which must be (B·m)×d), repeating
// p for each block of m consecutive rows. Used for positional encoding of
// mailbox slots.
func (tp *Tape) AddRowsTiled(a, p *Tensor) *Tensor {
	m := p.W.Rows
	if a.W.Cols != p.W.Cols || a.W.Rows%m != 0 {
		panic(fmt.Sprintf("nn: AddRowsTiled %dx%d with tile %dx%d", a.W.Rows, a.W.Cols, p.W.Rows, p.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, p)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		src := a.W.Row(r)
		pr := p.W.Row(r % m)
		for j := range dst {
			dst[j] = src[j] + pr[j]
		}
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				a.Grad().Add(out.G)
			}
			if p.needGrad {
				pg := p.Grad()
				for r := 0; r < out.G.Rows; r++ {
					tensor.Axpy(pg.Row(r%m), out.G.Row(r), 1)
				}
			}
		}
	}
	return tp.record(out)
}

// ConcatCols concatenates a and b column-wise (same row count).
func (tp *Tape) ConcatCols(a, b *Tensor) *Tensor {
	if a.W.Rows != b.W.Rows {
		panic(fmt.Sprintf("nn: ConcatCols rows %d vs %d", a.W.Rows, b.W.Rows))
	}
	ac, bc := a.W.Cols, b.W.Cols
	out := tp.newResultRaw(a.W.Rows, ac+bc, a, b)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		copy(dst[:ac], a.W.Row(r))
		copy(dst[ac:], b.W.Row(r))
	}
	if out.needGrad {
		out.back = func() {
			for r := 0; r < out.G.Rows; r++ {
				src := out.G.Row(r)
				if a.needGrad {
					tensor.Axpy(a.Grad().Row(r), src[:ac], 1)
				}
				if b.needGrad {
					tensor.Axpy(b.Grad().Row(r), src[ac:], 1)
				}
			}
		}
	}
	return tp.record(out)
}

// Concat3Cols concatenates three tensors column-wise.
func (tp *Tape) Concat3Cols(a, b, c *Tensor) *Tensor {
	return tp.ConcatCols(tp.ConcatCols(a, b), c)
}

// SliceCols returns columns [lo, hi) of a.
func (tp *Tape) SliceCols(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.W.Cols || lo >= hi {
		panic(fmt.Sprintf("nn: SliceCols [%d,%d) of %d cols", lo, hi, a.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, hi-lo, a)
	for r := 0; r < a.W.Rows; r++ {
		copy(out.W.Row(r), a.W.Row(r)[lo:hi])
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				for r := 0; r < out.G.Rows; r++ {
					tensor.Axpy(a.Grad().Row(r)[lo:hi], out.G.Row(r), 1)
				}
			}
		}
	}
	return tp.record(out)
}

// ReLU returns max(a, 0) element-wise.
func (tp *Tape) ReLU(a *Tensor) *Tensor {
	out := tp.newResult(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		if v > 0 {
			out.W.Data[i] = v
		}
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					if a.W.Data[i] > 0 {
						g.Data[i] += v
					}
				}
			}
		}
	}
	return tp.record(out)
}

// LeakyReLU returns a where a>0, slope·a otherwise.
func (tp *Tape) LeakyReLU(a *Tensor, slope float32) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		if v > 0 {
			out.W.Data[i] = v
		} else {
			out.W.Data[i] = slope * v
		}
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					if a.W.Data[i] > 0 {
						g.Data[i] += v
					} else {
						g.Data[i] += slope * v
					}
				}
			}
		}
	}
	return tp.record(out)
}

// Sigmoid returns σ(a) element-wise.
func (tp *Tape) Sigmoid(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = tensor.Sigmoid32(v)
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					s := out.W.Data[i]
					g.Data[i] += v * s * (1 - s)
				}
			}
		}
	}
	return tp.record(out)
}

// Tanh returns tanh(a) element-wise.
func (tp *Tape) Tanh(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = tensor.Tanh32(v)
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					t := out.W.Data[i]
					g.Data[i] += v * (1 - t*t)
				}
			}
		}
	}
	return tp.record(out)
}

// Exp returns e^a element-wise.
func (tp *Tape) Exp(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = tensor.Exp32(v)
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					g.Data[i] += v * out.W.Data[i]
				}
			}
		}
	}
	return tp.record(out)
}

// Square returns a² element-wise.
func (tp *Tape) Square(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = v * v
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					g.Data[i] += 2 * v * a.W.Data[i]
				}
			}
		}
	}
	return tp.record(out)
}

// Dropout zeroes each element with probability rate during training and
// scales survivors by 1/(1−rate). It is the identity on inference tapes.
func (tp *Tape) Dropout(a *Tensor, rate float32) *Tensor {
	if !tp.training || rate <= 0 {
		return a
	}
	if rate >= 1 {
		panic("nn: Dropout rate must be < 1")
	}
	keep := 1 - rate
	inv := 1 / keep
	mask := make([]float32, len(a.W.Data))
	out := tp.newResult(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		if tp.rng.Float32() < keep {
			mask[i] = inv
			out.W.Data[i] = v * inv
		}
	}
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				for i, v := range out.G.Data {
					g.Data[i] += v * mask[i]
				}
			}
		}
	}
	return tp.record(out)
}

// SumAll reduces a to a 1×1 scalar by summation.
func (tp *Tape) SumAll(a *Tensor) *Tensor {
	out := tp.newResultRaw(1, 1, a)
	var s float32
	for _, v := range a.W.Data {
		s += v
	}
	out.W.Data[0] = s
	if out.needGrad {
		out.back = func() {
			if a.needGrad {
				g := a.Grad()
				gv := out.G.Data[0]
				for i := range g.Data {
					g.Data[i] += gv
				}
			}
		}
	}
	return tp.record(out)
}

// MeanAll reduces a to a 1×1 scalar by averaging.
func (tp *Tape) MeanAll(a *Tensor) *Tensor {
	n := len(a.W.Data)
	if n == 0 {
		panic("nn: MeanAll of empty tensor")
	}
	return tp.Scale(tp.SumAll(a), 1/float32(n))
}

// Gather selects rows of table by index, the embedding-lookup primitive.
// Backward scatter-adds into the table gradient.
func (tp *Tape) Gather(table *Tensor, idx []int32) *Tensor {
	out := tp.newResultRaw(len(idx), table.W.Cols, table)
	for r, id := range idx {
		copy(out.W.Row(r), table.W.Row(int(id)))
	}
	if out.needGrad {
		out.back = func() {
			if table.needGrad {
				g := table.Grad()
				for r, id := range idx {
					tensor.Axpy(g.Row(int(id)), out.G.Row(r), 1)
				}
			}
		}
	}
	return tp.record(out)
}

// SegmentMean averages the rows of x that share a segment id. segOf[r] gives
// the segment of row r (must be in [0, numSeg)); empty segments produce zero
// rows. Used for mean-aggregation in GraphSAGE-style models.
func (tp *Tape) SegmentMean(x *Tensor, segOf []int32, numSeg int) *Tensor {
	if len(segOf) != x.W.Rows {
		panic(fmt.Sprintf("nn: SegmentMean %d rows, %d segment ids", x.W.Rows, len(segOf)))
	}
	counts := make([]float32, numSeg)
	for _, s := range segOf {
		counts[s]++
	}
	out := tp.newResult(numSeg, x.W.Cols, x)
	for r, s := range segOf {
		tensor.Axpy(out.W.Row(int(s)), x.W.Row(r), 1)
	}
	for s := 0; s < numSeg; s++ {
		if counts[s] > 0 {
			row := out.W.Row(s)
			inv := 1 / counts[s]
			for j := range row {
				row[j] *= inv
			}
		}
	}
	if out.needGrad {
		out.back = func() {
			if x.needGrad {
				g := x.Grad()
				for r, s := range segOf {
					tensor.Axpy(g.Row(r), out.G.Row(int(s)), 1/counts[s])
				}
			}
		}
	}
	return tp.record(out)
}

// OverlayRows returns a copy of base with row rows[i] replaced by row i of
// overlay. Gradients flow into both base (untouched rows) and overlay
// (replaced rows). Rows listed several times keep the last overlay write,
// and only that contribution receives gradient.
func (tp *Tape) OverlayRows(base, overlay *Tensor, rows []int32) *Tensor {
	if base.W.Cols != overlay.W.Cols {
		panic(fmt.Sprintf("nn: OverlayRows col mismatch %d vs %d", base.W.Cols, overlay.W.Cols))
	}
	if len(rows) != overlay.W.Rows {
		panic(fmt.Sprintf("nn: OverlayRows %d rows for %d overlay rows", len(rows), overlay.W.Rows))
	}
	out := tp.newResultRaw(base.W.Rows, base.W.Cols, base, overlay)
	out.W.CopyFrom(base.W)
	// winner[r] records which overlay row owns base row r (-1: base).
	winner := make([]int32, base.W.Rows)
	for r := range winner {
		winner[r] = -1
	}
	for i, r := range rows {
		copy(out.W.Row(int(r)), overlay.W.Row(i))
		winner[r] = int32(i)
	}
	if out.needGrad {
		out.back = func() {
			for r := 0; r < out.G.Rows; r++ {
				if w := winner[r]; w >= 0 {
					if overlay.needGrad {
						tensor.Axpy(overlay.Grad().Row(int(w)), out.G.Row(r), 1)
					}
				} else if base.needGrad {
					tensor.Axpy(base.Grad().Row(r), out.G.Row(r), 1)
				}
			}
		}
	}
	return tp.record(out)
}

// RowDot computes per-row inner products of a and b (same shape), producing
// an n×1 tensor of logits. Used by dot-product link decoders.
func (tp *Tape) RowDot(a, b *Tensor) *Tensor {
	if a.W.Rows != b.W.Rows || a.W.Cols != b.W.Cols {
		panic(fmt.Sprintf("nn: RowDot shape mismatch %dx%d vs %dx%d", a.W.Rows, a.W.Cols, b.W.Rows, b.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, 1, a, b)
	for r := 0; r < a.W.Rows; r++ {
		out.W.Data[r] = tensor.Dot(a.W.Row(r), b.W.Row(r))
	}
	if out.needGrad {
		out.back = func() {
			for r := 0; r < out.G.Rows; r++ {
				gv := out.G.Data[r]
				if a.needGrad {
					tensor.Axpy(a.Grad().Row(r), b.W.Row(r), gv)
				}
				if b.needGrad {
					tensor.Axpy(b.Grad().Row(r), a.W.Row(r), gv)
				}
			}
		}
	}
	return tp.record(out)
}
