package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// Every op guards its backward-op recording behind out.needGrad: on
// inference tapes (nograd) no output ever needs gradients, so the operand
// stores are skipped entirely. The gradient rules themselves live in
// backward.go's stepBack switch, keyed by the opKind each op stamps here —
// encoding backward as data instead of a captured closure is what makes a
// warm pooled training pass allocation-free.

// MatMul returns a·b. On an inference tape carrying a quantized weight set,
// a multiply against one of the published matrices takes the int8 GEMM path
// instead (see quant.go).
func (tp *Tape) MatMul(a, b *Tensor) *Tensor {
	if tp.quant != nil {
		if qm := tp.quant.byPtr[b.W]; qm != nil {
			return tp.matMulInt8(a, b, qm)
		}
	}
	out := tp.newResultRaw(a.W.Rows, b.W.Cols, a, b)
	if tp.training {
		// Training-mode tapes run the fastest GEMM in the process (the asm
		// tier when present): gradients are self-consistent, only serving
		// forwards carry the bit-exact default-tier contract.
		tensor.FastMatMul(out.W, a.W, b.W)
	} else {
		tensor.MatMul(out.W, a.W, b.W)
	}
	if out.needGrad {
		out.op, out.a, out.b = opMatMul, a, b
	}
	return tp.record(out)
}

// Add returns a+b element-wise (same shape).
func (tp *Tape) Add(a, b *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, b)
	tensor.AddScaledTo(out.W.Data, a.W.Data, b.W.Data, 1)
	if out.needGrad {
		out.op, out.a, out.b = opAdd, a, b
	}
	return tp.record(out)
}

// Sub returns a−b element-wise.
func (tp *Tape) Sub(a, b *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, b)
	tensor.AddScaledTo(out.W.Data, a.W.Data, b.W.Data, -1)
	if out.needGrad {
		out.op, out.a, out.b = opSub, a, b
	}
	return tp.record(out)
}

// Mul returns a⊙b element-wise.
func (tp *Tape) Mul(a, b *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, b)
	bd := b.W.Data
	for i, v := range a.W.Data {
		out.W.Data[i] = v * bd[i]
	}
	if out.needGrad {
		out.op, out.a, out.b = opMulElem, a, b
	}
	return tp.record(out)
}

// Scale returns s·a.
func (tp *Tape) Scale(a *Tensor, s float32) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = v * s
	}
	if out.needGrad {
		out.op, out.a, out.sc = opScale, a, s
	}
	return tp.record(out)
}

// AddConst returns a+c element-wise.
func (tp *Tape) AddConst(a *Tensor, c float32) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = v + c
	}
	if out.needGrad {
		out.op, out.a = opAddConst, a
	}
	return tp.record(out)
}

// ScalarAffine returns g·a + b element-wise, where g and b are 1×1 tensors
// broadcast over a — the calibrated-decoder head fused into one op (the
// Gather-broadcast formulation it replaces allocated an index slice and two
// intermediate matrices per call).
func (tp *Tape) ScalarAffine(a, g, b *Tensor) *Tensor {
	if g.W.Rows != 1 || g.W.Cols != 1 || b.W.Rows != 1 || b.W.Cols != 1 {
		panic(fmt.Sprintf("nn: ScalarAffine gain/bias must be 1x1, got %dx%d and %dx%d",
			g.W.Rows, g.W.Cols, b.W.Rows, b.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, g, b)
	gv, bv := g.W.Data[0], b.W.Data[0]
	for i, v := range a.W.Data {
		out.W.Data[i] = v*gv + bv
	}
	if out.needGrad {
		out.op, out.a, out.b, out.c, out.sc = opScalarAffine, a, g, b, gv
	}
	return tp.record(out)
}

// AddRowVec broadcasts the 1×cols vector v across the rows of a.
func (tp *Tape) AddRowVec(a, v *Tensor) *Tensor {
	if v.W.Rows != 1 || v.W.Cols != a.W.Cols {
		panic(fmt.Sprintf("nn: AddRowVec wants 1x%d vector, got %dx%d", a.W.Cols, v.W.Rows, v.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, v)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		src := a.W.Row(r)
		for j, b := range v.W.Data {
			dst[j] = src[j] + b
		}
	}
	if out.needGrad {
		out.op, out.a, out.b = opAddRowVec, a, v
	}
	return tp.record(out)
}

// MulRowVec broadcasts the 1×cols vector v multiplicatively across the rows
// of a: out[i][j] = a[i][j] · v[j].
func (tp *Tape) MulRowVec(a, v *Tensor) *Tensor {
	if v.W.Rows != 1 || v.W.Cols != a.W.Cols {
		panic(fmt.Sprintf("nn: MulRowVec wants 1x%d vector, got %dx%d", a.W.Cols, v.W.Rows, v.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, v)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		src := a.W.Row(r)
		for j, m := range v.W.Data {
			dst[j] = src[j] * m
		}
	}
	if out.needGrad {
		out.op, out.a, out.b = opMulRowVec, a, v
	}
	return tp.record(out)
}

// AddRowsTiled adds the m×d matrix p to a (which must be (B·m)×d), repeating
// p for each block of m consecutive rows. Used for positional encoding of
// mailbox slots.
func (tp *Tape) AddRowsTiled(a, p *Tensor) *Tensor {
	m := p.W.Rows
	if a.W.Cols != p.W.Cols || a.W.Rows%m != 0 {
		panic(fmt.Sprintf("nn: AddRowsTiled %dx%d with tile %dx%d", a.W.Rows, a.W.Cols, p.W.Rows, p.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a, p)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		src := a.W.Row(r)
		pr := p.W.Row(r % m)
		for j := range dst {
			dst[j] = src[j] + pr[j]
		}
	}
	if out.needGrad {
		out.op, out.a, out.b = opAddRowsTiled, a, p
	}
	return tp.record(out)
}

// ConcatCols concatenates a and b column-wise (same row count).
func (tp *Tape) ConcatCols(a, b *Tensor) *Tensor {
	if a.W.Rows != b.W.Rows {
		panic(fmt.Sprintf("nn: ConcatCols rows %d vs %d", a.W.Rows, b.W.Rows))
	}
	ac, bc := a.W.Cols, b.W.Cols
	out := tp.newResultRaw(a.W.Rows, ac+bc, a, b)
	for r := 0; r < a.W.Rows; r++ {
		dst := out.W.Row(r)
		copy(dst[:ac], a.W.Row(r))
		copy(dst[ac:], b.W.Row(r))
	}
	if out.needGrad {
		out.op, out.a, out.b, out.i0 = opConcatCols, a, b, ac
	}
	return tp.record(out)
}

// Concat3Cols concatenates three tensors column-wise.
func (tp *Tape) Concat3Cols(a, b, c *Tensor) *Tensor {
	return tp.ConcatCols(tp.ConcatCols(a, b), c)
}

// SliceCols returns columns [lo, hi) of a.
func (tp *Tape) SliceCols(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.W.Cols || lo >= hi {
		panic(fmt.Sprintf("nn: SliceCols [%d,%d) of %d cols", lo, hi, a.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, hi-lo, a)
	for r := 0; r < a.W.Rows; r++ {
		copy(out.W.Row(r), a.W.Row(r)[lo:hi])
	}
	if out.needGrad {
		out.op, out.a, out.i0, out.i1 = opSliceCols, a, lo, hi
	}
	return tp.record(out)
}

// ReLU returns max(a, 0) element-wise.
func (tp *Tape) ReLU(a *Tensor) *Tensor {
	out := tp.newResult(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		if v > 0 {
			out.W.Data[i] = v
		}
	}
	if out.needGrad {
		out.op, out.a = opReLU, a
	}
	return tp.record(out)
}

// LeakyReLU returns a where a>0, slope·a otherwise.
func (tp *Tape) LeakyReLU(a *Tensor, slope float32) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		if v > 0 {
			out.W.Data[i] = v
		} else {
			out.W.Data[i] = slope * v
		}
	}
	if out.needGrad {
		out.op, out.a, out.sc = opLeakyReLU, a, slope
	}
	return tp.record(out)
}

// Sigmoid returns σ(a) element-wise.
func (tp *Tape) Sigmoid(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = tensor.Sigmoid32(v)
	}
	if out.needGrad {
		out.op, out.a = opSigmoid, a
	}
	return tp.record(out)
}

// Tanh returns tanh(a) element-wise.
func (tp *Tape) Tanh(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = tensor.Tanh32(v)
	}
	if out.needGrad {
		out.op, out.a = opTanh, a
	}
	return tp.record(out)
}

// Exp returns e^a element-wise.
func (tp *Tape) Exp(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = tensor.Exp32(v)
	}
	if out.needGrad {
		out.op, out.a = opExp, a
	}
	return tp.record(out)
}

// Square returns a² element-wise.
func (tp *Tape) Square(a *Tensor) *Tensor {
	out := tp.newResultRaw(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		out.W.Data[i] = v * v
	}
	if out.needGrad {
		out.op, out.a = opSquare, a
	}
	return tp.record(out)
}

// Dropout zeroes each element with probability rate during training and
// scales survivors by 1/(1−rate). It is the identity on inference tapes.
func (tp *Tape) Dropout(a *Tensor, rate float32) *Tensor {
	if !tp.training || rate <= 0 {
		return a
	}
	if rate >= 1 {
		panic("nn: Dropout rate must be < 1")
	}
	keep := 1 - rate
	inv := 1 / keep
	mask := tp.scratch(len(a.W.Data))
	out := tp.newResult(a.W.Rows, a.W.Cols, a)
	for i, v := range a.W.Data {
		if tp.rng.Float32() < keep {
			mask[i] = inv
			out.W.Data[i] = v * inv
		}
	}
	if out.needGrad {
		out.op, out.a, out.f0 = opDropout, a, mask
	}
	return tp.record(out)
}

// SumAll reduces a to a 1×1 scalar by summation.
func (tp *Tape) SumAll(a *Tensor) *Tensor {
	out := tp.newResultRaw(1, 1, a)
	var s float32
	for _, v := range a.W.Data {
		s += v
	}
	out.W.Data[0] = s
	if out.needGrad {
		out.op, out.a = opSumAll, a
	}
	return tp.record(out)
}

// MeanAll reduces a to a 1×1 scalar by averaging.
func (tp *Tape) MeanAll(a *Tensor) *Tensor {
	n := len(a.W.Data)
	if n == 0 {
		panic("nn: MeanAll of empty tensor")
	}
	return tp.Scale(tp.SumAll(a), 1/float32(n))
}

// Gather selects rows of table by index, the embedding-lookup primitive.
// Backward scatter-adds into the table gradient.
func (tp *Tape) Gather(table *Tensor, idx []int32) *Tensor {
	out := tp.newResultRaw(len(idx), table.W.Cols, table)
	for r, id := range idx {
		copy(out.W.Row(r), table.W.Row(int(id)))
	}
	if out.needGrad {
		out.op, out.a, out.idx = opGather, table, idx
	}
	return tp.record(out)
}

// SegmentMean averages the rows of x that share a segment id. segOf[r] gives
// the segment of row r (must be in [0, numSeg)); empty segments produce zero
// rows. Used for mean-aggregation in GraphSAGE-style models.
func (tp *Tape) SegmentMean(x *Tensor, segOf []int32, numSeg int) *Tensor {
	if len(segOf) != x.W.Rows {
		panic(fmt.Sprintf("nn: SegmentMean %d rows, %d segment ids", x.W.Rows, len(segOf)))
	}
	counts := tp.scratch(numSeg)
	for _, s := range segOf {
		counts[s]++
	}
	out := tp.newResult(numSeg, x.W.Cols, x)
	for r, s := range segOf {
		tensor.Axpy(out.W.Row(int(s)), x.W.Row(r), 1)
	}
	for s := 0; s < numSeg; s++ {
		if counts[s] > 0 {
			row := out.W.Row(s)
			inv := 1 / counts[s]
			for j := range row {
				row[j] *= inv
			}
		}
	}
	if out.needGrad {
		out.op, out.a, out.idx, out.f0 = opSegmentMean, x, segOf, counts
	}
	return tp.record(out)
}

// OverlayRows returns a copy of base with row rows[i] replaced by row i of
// overlay. Gradients flow into both base (untouched rows) and overlay
// (replaced rows). Rows listed several times keep the last overlay write,
// and only that contribution receives gradient.
func (tp *Tape) OverlayRows(base, overlay *Tensor, rows []int32) *Tensor {
	if base.W.Cols != overlay.W.Cols {
		panic(fmt.Sprintf("nn: OverlayRows col mismatch %d vs %d", base.W.Cols, overlay.W.Cols))
	}
	if len(rows) != overlay.W.Rows {
		panic(fmt.Sprintf("nn: OverlayRows %d rows for %d overlay rows", len(rows), overlay.W.Rows))
	}
	out := tp.newResultRaw(base.W.Rows, base.W.Cols, base, overlay)
	out.W.CopyFrom(base.W)
	// winner[r] records which overlay row owns base row r (-1: base).
	winner := tp.scratchI32(base.W.Rows)
	for r := range winner {
		winner[r] = -1
	}
	for i, r := range rows {
		copy(out.W.Row(int(r)), overlay.W.Row(i))
		winner[r] = int32(i)
	}
	if out.needGrad {
		out.op, out.a, out.b, out.idx = opOverlayRows, base, overlay, winner
	}
	return tp.record(out)
}

// RowDot computes per-row inner products of a and b (same shape), producing
// an n×1 tensor of logits. Used by dot-product link decoders.
func (tp *Tape) RowDot(a, b *Tensor) *Tensor {
	if a.W.Rows != b.W.Rows || a.W.Cols != b.W.Cols {
		panic(fmt.Sprintf("nn: RowDot shape mismatch %dx%d vs %dx%d", a.W.Rows, a.W.Cols, b.W.Rows, b.W.Cols))
	}
	out := tp.newResultRaw(a.W.Rows, 1, a, b)
	for r := 0; r < a.W.Rows; r++ {
		out.W.Data[r] = tensor.Dot(a.W.Row(r), b.W.Row(r))
	}
	if out.needGrad {
		out.op, out.a, out.b = opRowDot, a, b
	}
	return tp.record(out)
}
