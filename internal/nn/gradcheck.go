package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// GradCheck compares the analytic gradient of loss() with central finite
// differences for every element of every parameter in params. loss must
// rebuild the forward pass from scratch on each call (it is invoked many
// times with perturbed parameters) and return the scalar loss value.
//
// It returns the worst relative error observed; errors below ~1e-2 are
// expected for float32 arithmetic with eps around 1e-2.
func GradCheck(params []*Tensor, loss func() float64, eps float32) (float64, error) {
	// Analytic pass: run once, backprop handled by the caller's loss closure?
	// No — the caller provides only the forward; we need the analytic grads
	// already accumulated in params before calling GradCheck.
	var worst float64
	for pi, p := range params {
		if p.G == nil {
			return 0, fmt.Errorf("nn: GradCheck param %d has no gradient; run Backward first", pi)
		}
		for j := range p.W.Data {
			orig := p.W.Data[j]
			p.W.Data[j] = orig + eps
			up := loss()
			p.W.Data[j] = orig - eps
			down := loss()
			p.W.Data[j] = orig
			numeric := (up - down) / (2 * float64(eps))
			analytic := float64(p.G.Data[j])
			diff := absf(numeric - analytic)
			if diff < 2e-4 {
				// Below the float32 central-difference noise floor.
				continue
			}
			denom := absf(numeric) + absf(analytic)
			rel := diff / denom
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// NumericGrad computes the central-difference gradient of loss with respect
// to a single matrix, for targeted tests.
func NumericGrad(m *tensor.Matrix, loss func() float64, eps float32) *tensor.Matrix {
	g := tensor.New(m.Rows, m.Cols)
	for j := range m.Data {
		orig := m.Data[j]
		m.Data[j] = orig + eps
		up := loss()
		m.Data[j] = orig - eps
		down := loss()
		m.Data[j] = orig
		g.Data[j] = float32((up - down) / (2 * float64(eps)))
	}
	return g
}
