package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Parameter serialization: a minimal versioned binary format so trained
// models survive process restarts. Layout (little endian):
//
//	magic "APNN" | version u32 | count u32 |
//	repeat count times: rows u32 | cols u32 | rows·cols float32
//
// Parameters are identified by position, so Save and Load must be given the
// same parameter list (models construct theirs deterministically).
const (
	paramsMagic   = "APNN"
	paramsVersion = 1
)

// SaveParams writes the parameter values to w.
func SaveParams(w io.Writer, params []*Tensor) error {
	if _, err := io.WriteString(w, paramsMagic); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(paramsVersion)); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	for i, p := range params {
		if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Rows)); err != nil {
			return fmt.Errorf("nn: save param %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Cols)); err != nil {
			return fmt.Errorf("nn: save param %d: %w", i, err)
		}
		if err := writeFloat32s(w, p.W.Data); err != nil {
			return fmt.Errorf("nn: save param %d: %w", i, err)
		}
	}
	return nil
}

// LoadParams reads values saved by SaveParams into params, validating
// count and shapes.
func LoadParams(r io.Reader, params []*Tensor) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if string(magic) != paramsMagic {
		return fmt.Errorf("nn: load params: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if version != paramsVersion {
		return fmt.Errorf("nn: load params: unsupported version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: load params: file has %d tensors, model has %d", count, len(params))
	}
	for i, p := range params {
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("nn: load param %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("nn: load param %d: %w", i, err)
		}
		if int(rows) != p.W.Rows || int(cols) != p.W.Cols {
			return fmt.Errorf("nn: load param %d: file shape %dx%d, model shape %dx%d",
				i, rows, cols, p.W.Rows, p.W.Cols)
		}
		if err := readFloat32s(r, p.W.Data); err != nil {
			return fmt.Errorf("nn: load param %d: %w", i, err)
		}
	}
	return nil
}

func writeFloat32s(w io.Writer, data []float32) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloat32s(r io.Reader, data []float32) error {
	buf := make([]byte, 4*len(data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
