package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// TimeEncode maps each time delta Δt to the learnable harmonic embedding
// cos(ω·Δt + φ) of Xu et al. (TGAT), producing a len(dts)×dim tensor.
// omega and phi must be 1×dim parameters; the deltas themselves carry no
// gradient.
func (tp *Tape) TimeEncode(dts []float32, omega, phi *Tensor) *Tensor {
	dim := omega.W.Cols
	if omega.W.Rows != 1 || phi.W.Rows != 1 || phi.W.Cols != dim {
		panic(fmt.Sprintf("nn: TimeEncode omega/phi must be 1x%d", dim))
	}
	n := len(dts)
	out := tp.newResultRaw(n, dim, omega, phi)
	for i, dt := range dts {
		row := out.W.Row(i)
		for j := 0; j < dim; j++ {
			row[j] = tensor.Cos32(omega.W.Data[j]*dt + phi.W.Data[j])
		}
	}
	if out.needGrad {
		out.op, out.a, out.b, out.f0 = opTimeEncode, omega, phi, dts
	}
	return tp.record(out)
}
