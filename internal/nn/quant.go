package nn

import (
	"fmt"

	"apan/internal/tensor"
)

// Int8 quantized inference (Config.Quantize / apan-serve -quantize).
//
// Published weights are quantized once per ParamSet publish — per output
// channel, symmetric, scale = column maxabs / 127 — into transposed int8
// blocks (QuantizeParamSet). At serve time an inference tape carrying a
// QuantParamSet intercepts MatMul calls whose right-hand side is one of the
// quantized matrices: the activation rows are quantized on the fly
// (per-row symmetric scales), the product runs through the int8 GEMM with
// int32 accumulators, and the result is rescaled to float32. Everything
// around the dense layers — bias adds, attention, layer norm, the decoder
// head — stays float32, which keeps the accuracy loss to the weight/
// activation rounding of the GEMMs (bounded by the quantized_drift scenario
// invariant at ≤ 0.02 AP on the fraud trace).
//
// The interception keys on matrix pointer identity: BindParams aliases each
// module weight to the published ParamSet matrix, so the module's b.W *is*
// the map key. Training tapes never carry a QuantParamSet, and the tape
// must be nograd — there is no backward rule through the int8 path.

// QuantMatrix is a per-channel symmetrically quantized weight matrix in
// transposed layout: BT[j*K+i] ≈ W[i][j] / Scales[j] for a K×N original.
type QuantMatrix struct {
	K, N   int
	BT     []int8
	Scales []float32
}

// QuantizeMatrix quantizes a K×N weight matrix per output column.
func QuantizeMatrix(w *tensor.Matrix) *QuantMatrix {
	bT, scales := tensor.QuantizeColsInt8(w)
	return &QuantMatrix{K: w.Rows, N: w.Cols, BT: bT, Scales: scales}
}

// Dequantize reconstructs the float32 weight matrix (test support: the
// round-trip error per weight is bounded by scale/2 plus clamping at ±127).
func (q *QuantMatrix) Dequantize() *tensor.Matrix {
	m := tensor.New(q.K, q.N)
	for j := 0; j < q.N; j++ {
		s := q.Scales[j]
		col := q.BT[j*q.K : (j+1)*q.K]
		for i := 0; i < q.K; i++ {
			m.Data[i*q.N+j] = float32(col[i]) * s
		}
	}
	return m
}

// QuantParamSet holds the int8 blocks for one published ParamSet, keyed by
// the set's (immutable, aliased-everywhere) value matrices. Built once per
// publish, never per batch.
type QuantParamSet struct {
	version uint64
	byPtr   map[*tensor.Matrix]*QuantMatrix
}

// QuantizeParamSet quantizes every weight-shaped matrix (Rows > 1 and
// Cols > 1 — the dense-layer weights; vectors like biases, gains, and time
// encodings stay float32) of a published set. Matrices that never appear as
// a MatMul right-hand side simply go unused: the lookup is by pointer.
func QuantizeParamSet(ps *ParamSet) *QuantParamSet {
	q := &QuantParamSet{version: ps.Version(), byPtr: make(map[*tensor.Matrix]*QuantMatrix)}
	for i := 0; i < ps.NumTensors(); i++ {
		m := ps.Value(i)
		if m.Rows > 1 && m.Cols > 1 {
			q.byPtr[m] = QuantizeMatrix(m)
		}
	}
	return q
}

// Version returns the publish version the set was quantized from.
func (q *QuantParamSet) Version() uint64 { return q.version }

// NumQuantized returns how many matrices were quantized.
func (q *QuantParamSet) NumQuantized() int { return len(q.byPtr) }

// Lookup returns the quantized form of m, or nil.
func (q *QuantParamSet) Lookup(m *tensor.Matrix) *QuantMatrix { return q.byPtr[m] }

// SetQuantized attaches (or detaches, with nil) a quantized weight set to an
// inference tape: subsequent MatMul calls whose right-hand side is one of
// the set's matrices run the int8 GEMM. Panics on grad-enabled tapes —
// quantized inference has no backward path.
func (tp *Tape) SetQuantized(q *QuantParamSet) {
	if q != nil && !tp.nograd {
		panic("nn: SetQuantized on a grad-enabled tape (int8 inference has no backward path)")
	}
	tp.quant = q
}

// matMulInt8 is the quantized MatMul body: quantize activation rows, run the
// int8 GEMM, rescale. Scratch draws come from the tape arenas, so a warm
// pass stays allocation-free.
func (tp *Tape) matMulInt8(a, b *Tensor, qm *QuantMatrix) *Tensor {
	m, k := a.W.Rows, a.W.Cols
	if k != qm.K {
		panic(fmt.Sprintf("nn: quantized MatMul %dx%d · %dx%d", m, k, qm.K, qm.N))
	}
	out := tp.newResultRaw(m, qm.N, a, b)
	aq := tp.scratchI8(m * k)
	as := tp.scratch(m)
	for i := 0; i < m; i++ {
		as[i] = tensor.QuantizeRowInt8(aq[i*k:(i+1)*k], a.W.Row(i))
	}
	tensor.Int8MatMul(out.W, aq, as, qm.BT, qm.Scales, m, k, qm.N)
	return tp.record(out)
}
