package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apan/internal/tensor"
)

// TestQuickQuantizeRoundTrip is the per-channel symmetric quantization
// property: for every weight, |dequantize(quantize(w)) − w| ≤ scale/2 of its
// output column — the half-step rounding bound. Symmetric scaling at column
// maxabs/127 means no value lands outside the clamp range, so the bound is
// unconditional; a zero column must round-trip exactly (scale 0).
func TestQuickQuantizeRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k, n := int(kRaw%32)+2, int(nRaw%32)+2
		w := tensor.New(k, n)
		for i := range w.Data {
			// Mixed magnitudes per column stress the shared column scale.
			w.Data[i] = float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(5)-2)))
		}
		// One all-zero column: scale 0 must reproduce exact zeros.
		for i := 0; i < k; i++ {
			w.Data[i*n] = 0
		}
		q := QuantizeMatrix(w)
		rt := q.Dequantize()
		for j := 0; j < n; j++ {
			bound := float64(q.Scales[j]) / 2
			for i := 0; i < k; i++ {
				d := math.Abs(float64(rt.At(i, j) - w.At(i, j)))
				// A whisker of float32 slack: the bound itself is computed
				// in float32 (scale = maxabs/127, value = int8*scale).
				if d > bound*(1+1e-6)+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
