// Command apan-bench reproduces the paper's tables and figures. Each
// experiment prints a table in the shape of the original; DESIGN.md §3 maps
// experiment ids to modules.
//
// Usage:
//
//	apan-bench -exp table2 -dataset wikipedia -scale 0.05 -seeds 3 -epochs 5
//	apan-bench -exp fig6 -db-latency 1ms
//	apan-bench -exp all -scale 0.02
//
// The perf experiment measures the serving hot paths (pooled vs baseline
// InferBatch, scratch-reusing vs fresh propagation) and, with -json, writes
// the machine-readable trajectory record BENCH_apan.json:
//
//	apan-bench -exp perf -json
//
// The scenarios experiment runs the deterministic simulation harness
// (internal/scenario): bundled workloads — flash crowd, Zipf hotspot, node
// churn, out-of-order streams, fraud rings — through the full stack under
// fault injection, printing a per-scenario table of AP/AUC, drop/latency
// stats and invariant verdicts; it exits non-zero on any invariant
// violation. See docs/testing.md.
//
//	apan-bench -exp scenarios -json
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"apan/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apan-bench: ")

	var (
		exp         = flag.String("exp", "all", "experiment: table1|table2|table3|fig6|fig7|fig8|fig9|ablation|drift|perf|scenarios|all")
		datasetName = flag.String("dataset", "", "dataset for table2/table3 (default: the paper's)")
		scale       = flag.Float64("scale", 0.02, "dataset scale factor (1.0 = paper size)")
		seeds       = flag.Int("seeds", 1, "seeds per cell (paper: 10)")
		seed        = flag.Int64("seed", 1, "base seed")
		epochs      = flag.Int("epochs", 5, "max training epochs")
		batch       = flag.Int("batch", 200, "events per batch")
		fanout      = flag.Int("fanout", 10, "sampled neighbors")
		slots       = flag.Int("slots", 10, "mailbox slots")
		dbLatency   = flag.Duration("db-latency", 0, "simulated graph-DB latency per query (fig6, §4.6)")
		graphBack   = flag.String("graph-backend", "", "temporal-graph store behind the scenario harness: flat|sharded|remote-sim (empty: flat; backend_parity cross-checks the others)")
		models      = flag.String("models", "", "comma-separated model subset (default: the paper's)")
		jsonOut     = flag.Bool("json", false, "write the perf/scenarios experiment's results to -json-out")
		jsonPath    = flag.String("json-out", "BENCH_apan.json", "path of the machine-readable experiment record")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		// log.Fatalf on an experiment error skips these; a truncated profile
		// of a failed run is not worth keeping anyway.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("-cpuprofile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("-memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live set, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("-memprofile: %v", err)
			}
		}()
	}

	o := bench.Options{
		Scale:        *scale,
		Seed:         *seed,
		Seeds:        *seeds,
		Epochs:       *epochs,
		BatchSize:    *batch,
		Fanout:       *fanout,
		Slots:        *slots,
		DBLatency:    *dbLatency,
		GraphBackend: *graphBack,
		Out:          os.Stdout,
	}
	var subset []string
	if *models != "" {
		subset = strings.Split(*models, ",")
	}

	run := func(name string, f func() error) {
		log.Printf("== %s ==", name)
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		log.Printf("== %s done in %v ==\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("table1", func() error { _, err := bench.RunTable1(o); return err })
	}
	if want("table2") {
		datasets := []string{"wikipedia", "reddit"}
		if *datasetName != "" {
			datasets = []string{*datasetName}
		}
		for _, d := range datasets {
			d := d
			run("table2/"+d, func() error { _, err := bench.RunTable2(o, d, subset); return err })
		}
	}
	if want("table3") {
		datasets := []string{"wikipedia", "reddit", "alipay"}
		if *datasetName != "" {
			datasets = []string{*datasetName}
		}
		for _, d := range datasets {
			d := d
			run("table3/"+d, func() error { _, err := bench.RunTable3(o, d, subset); return err })
		}
	}
	if want("fig6") {
		run("fig6", func() error { _, err := bench.RunFigure6(o, subset); return err })
	}
	if want("fig7") {
		run("fig7", func() error { _, err := bench.RunFigure7(o, subset); return err })
	}
	if want("fig8") {
		run("fig8", func() error { _, err := bench.RunFigure8(o, subset, nil); return err })
	}
	if want("fig9") {
		run("fig9", func() error { _, err := bench.RunFigure9(o, nil, nil); return err })
	}
	if *exp == "ablation" {
		run("ablation", func() error { _, err := bench.RunAblation(o); return err })
	}
	if *exp == "drift" {
		run("drift", func() error { _, err := bench.RunDriftAblation(o, nil); return err })
	}
	if want("perf") {
		run("perf", func() error {
			rep, err := bench.RunPerf(o)
			if err != nil {
				return err
			}
			if *jsonOut {
				if err := rep.WriteJSON(*jsonPath); err != nil {
					return err
				}
				log.Printf("wrote %s", *jsonPath)
			}
			return nil
		})
	}
	if *exp == "scenarios" {
		run("scenarios", func() error {
			rep, err := bench.RunScenarios(o)
			// Persist the table even when invariants were violated — the
			// JSON is the diagnosis artifact. A write failure must not mask
			// the violation verdict, so the errors are joined.
			if rep != nil && *jsonOut {
				if werr := rep.WriteJSON(*jsonPath); werr != nil {
					err = errors.Join(err, werr)
				} else {
					log.Printf("wrote %s", *jsonPath)
				}
			}
			return err
		})
	}
}
