// Command apan-data generates a synthetic dataset and exports it in the
// JODIE CSV format, so the streams used by this repo's experiments can be
// fed to other temporal-GNN implementations (or inspected directly).
//
//	apan-data -dataset wikipedia -scale 0.05 -out wikipedia_synth.csv
package main

import (
	"flag"
	"fmt"
	"log"

	"apan/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apan-data: ")

	var (
		name  = flag.String("dataset", "wikipedia", "wikipedia|reddit (bipartite JODIE format)")
		scale = flag.Float64("scale", 0.05, "scale factor (1.0 = paper size)")
		seed  = flag.Int64("seed", 1, "random seed")
		drift = flag.Float64("drift", 0, "preference drift 0..1 (0 = default 0.4)")
		out   = flag.String("out", "", "output CSV path (required)")
		stats = flag.Bool("stats", false, "print Table-1 statistics instead of writing")
	)
	flag.Parse()

	cfg := dataset.Config{Scale: *scale, Seed: *seed, Drift: *drift}
	var d *dataset.Dataset
	switch *name {
	case "wikipedia":
		d = dataset.Wikipedia(cfg)
	case "reddit":
		d = dataset.Reddit(cfg)
	default:
		log.Fatalf("unknown dataset %q (alipay is not bipartite and has no JODIE form)", *name)
	}

	if *stats {
		s := d.Stats(0.70, 0.15)
		fmt.Printf("%s: %d nodes (%d users), %d events, %d-dim features, %.1f days, %d labeled\n",
			s.Name, s.Nodes, d.NumUsers, s.Edges, s.EdgeDim, s.TimespanDays, s.LabeledInteractions)
		return
	}
	if *out == "" {
		log.Fatal("-out is required (or use -stats)")
	}
	if err := dataset.SaveCSV(*out, d); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d events to %s", len(d.Events), *out)
}
