// Command apan trains and evaluates an APAN model on one of the synthetic
// paper datasets or a real JODIE-format CSV.
//
// Usage:
//
//	apan -dataset wikipedia -scale 0.05 -epochs 10
//	apan -csv /data/wikipedia.csv -epochs 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"apan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apan: ")

	var (
		datasetName = flag.String("dataset", "wikipedia", "synthetic dataset: wikipedia|reddit|alipay")
		csvPath     = flag.String("csv", "", "load a JODIE-format CSV instead of generating data")
		scale       = flag.Float64("scale", 0.05, "synthetic dataset scale (1.0 = paper size)")
		seed        = flag.Int64("seed", 1, "random seed")
		epochs      = flag.Int("epochs", 10, "max training epochs")
		patience    = flag.Int("patience", 5, "early stopping patience on validation AP")
		batch       = flag.Int("batch", 200, "events per batch")
		slots       = flag.Int("slots", 10, "mailbox slots")
		neighbors   = flag.Int("neighbors", 10, "propagation fan-out")
		hops        = flag.Int("hops", 2, "propagation depth k")
		hidden      = flag.Int("hidden", 80, "MLP hidden width")
		lr          = flag.Float64("lr", 1e-4, "Adam learning rate")
		savePath    = flag.String("save", "", "write a checkpoint (params + streaming state) here after training")
		loadPath    = flag.String("load", "", "restore a checkpoint and skip training")
	)
	flag.Parse()

	var ds *apan.Dataset
	var err error
	switch {
	case *csvPath != "":
		ds, err = apan.LoadCSV(*csvPath, "csv")
	case *datasetName == "wikipedia":
		ds = apan.Wikipedia(apan.DatasetConfig{Scale: *scale, Seed: *seed})
	case *datasetName == "reddit":
		ds = apan.Reddit(apan.DatasetConfig{Scale: *scale, Seed: *seed})
	case *datasetName == "alipay":
		ds = apan.Alipay(apan.DatasetConfig{Scale: *scale, Seed: *seed})
	default:
		err = fmt.Errorf("unknown dataset %q", *datasetName)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset %s: %d nodes, %d events, %d-dim edge features",
		ds.Name, ds.NumNodes, len(ds.Events), ds.EdgeDim)

	heads := 2
	if ds.EdgeDim%2 != 0 {
		heads = 1
	}
	model, err := apan.New(apan.Config{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim,
		Slots: *slots, Neighbors: *neighbors, Hops: *hops, Heads: heads,
		Hidden: *hidden, BatchSize: *batch, LR: float32(*lr), Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	split := ds.Split(0.70, 0.15)
	if *loadPath != "" {
		if err := model.LoadCheckpointFile(*loadPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("restored checkpoint %s", *loadPath)
		ns := apan.NewNegSampler(ds.NumNodes)
		for i := range split.Train {
			ns.Observe(&split.Train[i])
		}
		test := model.EvalStream(split.Test, ns)
		fmt.Printf("restored model: test acc %.4f ap %.4f\n", test.Accuracy, test.AP)
		return
	}
	bestAP, bad := 0.0, 0
	for epoch := 1; epoch <= *epochs; epoch++ {
		model.ResetRuntime()
		ns := apan.NewNegSampler(ds.NumNodes)
		tr := model.TrainEpoch(split.Train, ns)
		val := model.EvalStream(split.Val, ns)
		log.Printf("epoch %2d  loss %.4f  train %.1fs  val acc %.4f ap %.4f",
			epoch, tr.Loss, tr.Elapsed.Seconds(), val.Accuracy, val.AP)
		if val.AP > bestAP {
			bestAP, bad = val.AP, 0
		} else if bad++; bad >= *patience {
			log.Printf("early stop (patience %d)", *patience)
			break
		}
	}

	// Clean final measurement: replay train to build state, then val+test.
	model.ResetRuntime()
	ns := apan.NewNegSampler(ds.NumNodes)
	model.EvalStream(split.Train, ns)
	val := model.EvalStream(split.Val, ns)
	if *savePath != "" {
		// Checkpoint at the deployment point: trained and warmed through
		// train+val, ready to serve the future.
		if err := model.SaveCheckpointFile(*savePath); err != nil {
			log.Fatal(err)
		}
		log.Printf("checkpoint written to %s", *savePath)
	}
	test := model.EvalStream(split.Test, ns)
	fmt.Printf("final: val acc %.4f ap %.4f | test acc %.4f ap %.4f | sync %s\n",
		val.Accuracy, val.AP, test.Accuracy, test.AP, test.SyncHist.String())
	if test.AP != test.AP { // NaN guard for degenerate inputs
		os.Exit(1)
	}
}
