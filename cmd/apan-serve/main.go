// Command apan-serve demonstrates APAN's deployment architecture: a TCP
// server whose request path runs only the synchronous link (mailbox read +
// encoder + decoder) while graph writes and mail propagation happen on the
// asynchronous worker — the paper's Fig. 2b, with a simulated remote graph
// database if requested.
//
// Protocol: newline-delimited JSON. Request:
//
//	{"src": 12, "dst": 9311, "time": 1234.5, "feat": [ ... ]}
//
// Response:
//
//	{"score": 0.83, "sync_us": 412, "queue_depth": 2}
//
// Run a self-contained demo (train briefly, serve, replay the test stream):
//
//	apan-serve -demo -scale 0.02 -db-latency 500us
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"apan"
)

type request struct {
	Src  int32     `json:"src"`
	Dst  int32     `json:"dst"`
	Time float64   `json:"time"`
	Feat []float32 `json:"feat"`
}

type response struct {
	Score      float32 `json:"score"`
	SyncMicros int64   `json:"sync_us"`
	QueueDepth int     `json:"queue_depth"`
	Error      string  `json:"error,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("apan-serve: ")

	var (
		addr      = flag.String("addr", "127.0.0.1:7683", "listen address")
		scale     = flag.Float64("scale", 0.02, "training dataset scale")
		epochs    = flag.Int("epochs", 3, "training epochs before serving")
		dbLatency = flag.Duration("db-latency", 0, "simulated graph-DB latency per query on the async link")
		demo      = flag.Bool("demo", false, "run a local client replaying the test stream, then exit")
	)
	flag.Parse()

	ds := apan.Wikipedia(apan.DatasetConfig{Scale: *scale, Seed: 1})
	split := ds.Split(0.70, 0.15)

	db := apan.NewGraphDB(apan.NewGraph(ds.NumNodes))
	if *dbLatency > 0 {
		db.Latency = apan.ConstantLatency(*dbLatency)
		db.Sleep = true
	}
	model, err := apan.NewWithDB(apan.Config{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, Seed: 1,
	}, db)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("training %d epochs on %d events…", *epochs, len(split.Train))
	for e := 0; e < *epochs; e++ {
		model.ResetRuntime()
		ns := apan.NewNegSampler(ds.NumNodes)
		tr := model.TrainEpoch(split.Train, ns)
		log.Printf("epoch %d loss %.4f", e+1, tr.Loss)
	}
	// Rebuild streaming state for serving.
	model.ResetRuntime()
	model.EvalStream(split.Train, nil)
	model.EvalStream(split.Val, nil)

	pipe := apan.NewPipeline(model, 64)
	defer pipe.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("serving on %s (db-latency=%v on async link)", ln.Addr(), *dbLatency)

	go acceptLoop(ln, pipe, ds.EdgeDim)

	if *demo {
		runDemo(ln.Addr().String(), split.Test, pipe)
		return
	}
	select {} // serve forever
}

func acceptLoop(ln net.Listener, pipe *apan.Pipeline, edgeDim int) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handle(conn, pipe, edgeDim)
	}
}

func handle(conn net.Conn, pipe *apan.Pipeline, edgeDim int) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			_ = enc.Encode(response{Error: err.Error()})
			continue
		}
		if len(req.Feat) != edgeDim {
			_ = enc.Encode(response{Error: fmt.Sprintf("feat dim %d, want %d", len(req.Feat), edgeDim)})
			continue
		}
		ev := apan.Event{Src: req.Src, Dst: req.Dst, Time: req.Time, Feat: req.Feat}
		scores, lat, err := pipe.Submit([]apan.Event{ev})
		if err != nil {
			_ = enc.Encode(response{Error: err.Error()})
			continue
		}
		_ = enc.Encode(response{
			Score:      scores[0],
			SyncMicros: lat.Microseconds(),
			QueueDepth: pipe.Stats().QueueDepth,
		})
	}
}

func runDemo(addr string, events []apan.Event, pipe *apan.Pipeline) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	n := len(events)
	if n > 500 {
		n = 500
	}
	start := time.Now()
	var worst time.Duration
	for i := 0; i < n; i++ {
		ev := events[i]
		if err := enc.Encode(request{Src: ev.Src, Dst: ev.Dst, Time: ev.Time, Feat: ev.Feat}); err != nil {
			log.Fatal(err)
		}
		if !sc.Scan() {
			log.Fatal("server closed connection")
		}
		var resp response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			log.Fatal(err)
		}
		if resp.Error != "" {
			log.Fatalf("server error: %s", resp.Error)
		}
		if d := time.Duration(resp.SyncMicros) * time.Microsecond; d > worst {
			worst = d
		}
	}
	elapsed := time.Since(start)
	pipe.Drain()
	st := pipe.Stats()
	fmt.Printf("demo: %d events in %v (%.0f ev/s)\n", n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("sync latency: mean %v p99 %v worst %v\n", st.SyncMean, st.SyncP99, worst)
	fmt.Printf("async propagation: mean %v, max queue depth %d\n", st.AsyncMean, st.MaxQueueDepth)
}
