// Command apan-serve exposes APAN's deployment architecture (paper
// Fig. 2b) over the v1 HTTP/JSON API: the request path runs only the
// synchronous link (mailbox read + encoder + decoder) while graph writes
// and mail propagation happen on the asynchronous workers, with a
// server-side micro-batcher coalescing concurrent single-event requests.
//
// Endpoints (schemas in docs/serving.md):
//
//	POST /v1/score                {"src":12,"dst":9311,"time":1234.5,"feat":[...]}
//	                              or {"events":[{...},...]} for a batch
//	GET  /v1/stats                pipeline + batcher + online-trainer + replication instrumentation
//	GET  /v1/livez                liveness (200 while the process can answer)
//	GET  /v1/readyz               readiness (503 when degraded: WAL latched error,
//	                              follower lag past -max-lag-events, checkpoint failures)
//	GET  /v1/healthz              legacy: always 200, verdict in the body
//	GET  /v1/explain/{node}       attention explanation of the last scored batch
//	POST /v1/admin/promote        promote a follower to leader (409 if already promoted)
//	POST /v1/admin/train/freeze   pause online training (with -train-online)
//	POST /v1/admin/train/resume   resume online training
//
// Run a self-contained demo (train briefly, serve over HTTP, replay the
// test stream through the batch endpoint, print latency figures):
//
//	apan-serve -demo -scale 0.02 -db-latency 500us
//
// Long-running deployments can learn from the stream they score and survive
// restarts (see docs/training.md):
//
//	apan-serve -train-online -checkpoint-every 5m -checkpoint /var/lib/apan.ckpt
//	apan-serve -load /var/lib/apan.ckpt -train-online
//
// With a write-ahead log, a crash loses at most the fsync window instead of
// everything since the last checkpoint — recovery is checkpoint + replay to
// the log's end (see docs/durability.md). SIGINT/SIGTERM trigger a graceful
// exit: drain the pipeline, sync the log, write a final checkpoint.
//
//	apan-serve -wal /var/lib/apan-wal -fsync group -checkpoint-every 5m -checkpoint /var/lib/apan.ckpt
//	apan-serve -load /var/lib/apan.ckpt -wal /var/lib/apan-wal
//
// Warm-standby replication ships the leader's WAL to a follower that
// replays it continuously and serves read-only, lag-stamped scores until
// promoted (docs/durability.md). The follower starts from the same base
// checkpoint the leader logs past:
//
//	apan-serve -wal /var/lib/apan-wal -ship-addr :7690 -checkpoint /var/lib/apan.ckpt ...
//	apan-serve -load /var/lib/apan.ckpt -follow leader:7690 -wal /var/lib/apan-follower-wal
//	curl -X POST follower:7683/v1/admin/promote   # takeover
//
// Promotion fences the ship stream at the disk-write layer (a still-alive
// ex-leader cannot corrupt the new leader's log) and severs the
// connection. A follower given -ship-addr parks the listener until
// promotion, then serves its own log to the next standby — no restart.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"apan"
	"apan/internal/serve"
)

// shardedBackendMinCores is the -graph-backend auto crossover: below this
// core count the sharded store's per-partition locking costs more than the
// flat store's single mutex saves (graph_{flat,sharded}_p1 in BENCH_apan.json;
// docs/performance.md "Graph backend crossover").
const shardedBackendMinCores = 4

func main() {
	log.SetFlags(0)
	log.SetPrefix("apan-serve: ")

	var (
		addr        = flag.String("addr", "127.0.0.1:7683", "listen address")
		scale       = flag.Float64("scale", 0.02, "training dataset scale")
		epochs      = flag.Int("epochs", 3, "training epochs before serving")
		dbLatency   = flag.Duration("db-latency", 0, "simulated graph-DB latency per query on the async link")
		graphBack   = flag.String("graph-backend", "auto", "temporal-graph store: auto|flat|sharded|remote-sim (auto: sharded on ≥4 cores, flat below — the measured crossover; docs/performance.md)")
		queueCap    = flag.Int("queue-cap", 256, "propagation queue capacity (backpressure bound)")
		workers     = flag.Int("workers", 1, "asynchronous propagation workers")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "micro-batch coalescing window for single-event requests")
		shards      = flag.Int("shards", 16, "lock-stripe count of the node-state and mailbox stores (power of two)")
		inferWork   = flag.Int("infer-workers", 1, "goroutines the synchronous-link gather fans out across")
		flushConc   = flag.Int("flush-concurrency", 1, "coalesced batches scored in parallel")
		maxNodes    = flag.Int("max-nodes", 1<<20, "dynamic node admission limit (negative disables admission)")
		seed        = flag.Int64("seed", 1, "process seed: dataset, model init, and retry-backoff jitter (same seed, same run)")
		demoBatch   = flag.Int("demo-batch", 50, "events per request in demo replay")
		demo        = flag.Bool("demo", false, "replay the test stream over HTTP, print latency stats, then exit")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (heap, allocs, profile, trace — see docs/performance.md)")
		quantize    = flag.Bool("quantize", false, "score with int8-quantized published weights: per-channel symmetric, quantized once per publish (≤0.02 AP drift bound; docs/performance.md)")
		kernelTier  = flag.String("kernel-tier", "", "linear-algebra kernel tier: default|wide|asm where available (empty keeps the process default; docs/performance.md)")

		loadPath  = flag.String("load", "", "start from this checkpoint (parameters + streaming state) instead of training")
		ckptPath  = flag.String("checkpoint", "apan-serve.ckpt", "checkpoint path for -checkpoint-every")
		ckptEvery = flag.Duration("checkpoint-every", 0, "write -checkpoint atomically at this interval (0 disables)")
		ckptIncr  = flag.Bool("ckpt-incremental", false, "incremental checkpoint cuts: copy only shards dirtied since the last cut (sharded stores; docs/durability.md)")

		walDir     = flag.String("wal", "", "write-ahead log directory: every applied batch is logged for replay-to-watermark recovery (empty disables durability); in -follow addr mode, where shipped segments land")
		fsyncMode  = flag.String("fsync", "interval", "WAL fsync policy: group (durable before ack), interval (bounded loss), none (page cache only)")
		fsyncEvery = flag.Duration("fsync-interval", 0, "with -fsync interval: background fsync cadence (0: 50ms)")

		follow      = flag.String("follow", "", "follower mode: replay the leader's shipped WAL from this address (host:port) or directory; requires -load, serves read-only until POST /v1/admin/promote")
		shipAddr    = flag.String("ship-addr", "", "stream WAL segments to followers connecting on this address; requires -wal as a leader, and with -follow the listener is held until promotion so a promoted leader feeds new standbys without a restart")
		shipEvery   = flag.Duration("ship-every", time.Second, "ship/heartbeat interval (leader) and replay-poll cadence (follower)")
		maxLagEvent = flag.Int64("max-lag-events", 0, "follower readiness bound: /v1/readyz reports degraded past this heartbeat lag (0: 10000, negative disables)")

		trainOnline = flag.Bool("train-online", false, "adapt to the served stream: background trainer + hot parameter swaps (docs/training.md)")
		trainLR     = flag.Float64("train-lr", 0, "online trainer learning rate (0: the model's rate)")
		trainStep   = flag.Int("train-step-every", 0, "applied events per online training step (0: default 64)")
		trainFrozen = flag.Bool("train-frozen", false, "attach the online trainer frozen (resume via POST /v1/admin/train/resume)")

		tenants    = flag.String("tenants", "", "enable multi-tenant admission with these contracts: comma-separated id[:weight[:rate[:lane]]] specs (weight: share of propagation bandwidth, rate: events/s of stream time, lane: strict priority, 0 highest); requests name their tenant via the X-Tenant header or the request's tenant field")
		tenantRate = flag.Float64("tenant-default-rate", 0, "event-time rate limit (events/s of stream time) for tenants not listed in -tenants; >0 also enables multi-tenant admission on its own")
		evictMax   = flag.Int("evict-max-nodes", 0, "cold-state eviction budget: LRU-evict node state and mailbox beyond this many warm nodes, re-warming on re-admission from current neighbors (0 disables)")
	)
	flag.Parse()

	ds := apan.Wikipedia(apan.DatasetConfig{Scale: *scale, Seed: *seed})
	split := ds.Split(0.70, 0.15)

	backend := *graphBack
	if backend == "auto" {
		// All backends are bit-exact, so auto is purely a throughput choice:
		// per-partition locking only pays for itself once appliers actually
		// run concurrently. Below the crossover (measured in
		// docs/performance.md) the flat store's single mutex is faster.
		backend = apan.GraphBackendFlat
		if runtime.NumCPU() >= shardedBackendMinCores {
			backend = apan.GraphBackendSharded
		}
	}

	cfg := apan.Config{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, Seed: *seed,
		Shards: *shards, InferWorkers: *inferWork,
		GraphBackend: backend,

		Quantize:   *quantize,
		KernelTier: *kernelTier,

		IncrementalCheckpoints: *ckptIncr,
		EvictMaxNodes:          *evictMax,
	}
	if err := cfg.Normalize(); err != nil {
		log.Fatal(err)
	}
	db := apan.NewGraphDB(apan.NewGraphStore(cfg))
	if *dbLatency > 0 {
		db.Latency = apan.ConstantLatency(*dbLatency)
		db.Sleep = true
	}
	model, err := apan.NewWithDB(cfg, db)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graph backend: %s", model.GraphBackend())

	if *loadPath != "" {
		// Resume from a checkpoint: parameters and the full streaming state
		// (node embeddings, mailboxes, temporal graph) in one load.
		if err := model.LoadCheckpointFile(*loadPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded checkpoint %s (param version %d, %d graph events, %d nodes)",
			*loadPath, model.ParamVersion(), model.GraphEvents(), model.NumNodes())
	} else {
		log.Printf("training %d epochs on %d events…", *epochs, len(split.Train))
		for e := 0; e < *epochs; e++ {
			model.ResetRuntime()
			ns := apan.NewNegSampler(ds.NumNodes)
			tr := model.TrainEpoch(split.Train, ns)
			log.Printf("epoch %d loss %.4f", e+1, tr.Loss)
		}
		// Rebuild streaming state for serving.
		model.ResetRuntime()
		model.EvalStream(split.Train, nil)
		model.EvalStream(split.Val, nil)
	}

	policy, err := apan.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{}) // closed once, when shutdown begins

	// Ship listener: created up front in both roles so a bad -ship-addr
	// fails fast. A leader serves it immediately (below); a follower parks
	// it until promotion — early standby connections queue in the accept
	// backlog and are served the moment the promoted leader starts
	// accepting, so feeding a new standby needs no restart.
	var shipLn net.Listener
	if *shipAddr != "" {
		if *follow == "" && *walDir == "" {
			log.Fatal("-ship-addr requires -wal: shipping streams the leader's log directory")
		}
		shipLn, err = net.Listen("tcp", *shipAddr)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Follower mode: no WAL attach and no training — state advances only
	// through replay of the leader's shipped log. -follow names either a
	// directory (shared storage: replay in place) or a leader's -ship-addr
	// (segments stream into -wal, replay from there).
	var rep *apan.Replica
	if *follow != "" {
		if *loadPath == "" {
			log.Fatal("-follow requires -load: the follower starts from the same base checkpoint the leader logs past")
		}
		if *trainOnline {
			log.Fatal("-follow is incompatible with -train-online: a follower's state must stay a pure function of the leader's log")
		}
		followDir, dialAddr := *follow, ""
		if fi, statErr := os.Stat(*follow); statErr != nil || !fi.IsDir() {
			// Network mode: shipped segments land in -wal.
			if *walDir == "" {
				log.Fatal("-follow with a leader address requires -wal: the directory shipped segments land in")
			}
			followDir, dialAddr = *walDir, *follow
			if err := os.MkdirAll(followDir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		rep, err = apan.NewFollower(model, followDir, apan.ReplicaOptions{
			WAL: apan.WALOptions{Dir: followDir, Policy: policy, SyncEvery: *fsyncEvery},
		})
		if err != nil {
			log.Fatal(err)
		}
		if dialAddr != "" {
			// Dial loop: receive the leader's ship stream, reconnect with a
			// pause on drop, stop once promoted. Takeover fencing is
			// two-layer: rep.ShipDest refuses chunk writes the moment
			// Promote begins — so even a still-alive ex-leader's stream
			// cannot land a byte under the new leader's own log — and the
			// fence hook severs the live connection so this loop notices
			// promotion rather than draining a stream whose writes are all
			// refused.
			var connMu sync.Mutex
			var shipConn net.Conn
			rep.SetFenceHook(func() {
				connMu.Lock()
				defer connMu.Unlock()
				if shipConn != nil {
					shipConn.Close()
				}
			})
			go func() {
				for {
					conn, dialErr := net.Dial("tcp", dialAddr)
					if dialErr == nil {
						connMu.Lock()
						shipConn = conn
						connMu.Unlock()
						dialErr = apan.FollowWALShip(conn, rep.ShipDest(), rep.ObserveLeaderIndex)
						connMu.Lock()
						shipConn = nil
						connMu.Unlock()
						conn.Close()
					}
					if rep.Role() != "follower" {
						return
					}
					select {
					case <-done:
						return
					case <-time.After(*shipEvery):
					}
					if rep.Role() != "follower" {
						return
					}
					if dialErr != nil {
						log.Printf("follower: ship stream from %s: %v (reconnecting)", dialAddr, dialErr)
					}
				}
			}()
		}
		// Replay loop: apply whatever the shipped log has accumulated, at
		// the ship cadence. Promotion ends it.
		go func() {
			tick := time.NewTicker(*shipEvery)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
				}
				n, pollErr := rep.PollOnce()
				if errors.Is(pollErr, apan.ErrReplicaPromoted) {
					if shipLn != nil {
						// The promoted leader unparks -ship-addr and feeds
						// standbys from the log it now appends to; rep.Cursor
						// reads the attached log's NextIndex for heartbeats.
						go func() {
							if err := apan.ServeWALShip(shipLn, followDir, rep.Cursor, *shipEvery, done); err != nil {
								log.Printf("wal ship server: %v", err)
							}
						}()
						log.Printf("promoted: shipping segments to followers on %s (interval %v)", shipLn.Addr(), *shipEvery)
					}
					return
				}
				if pollErr != nil {
					log.Printf("follower: replay: %v", pollErr)
					continue
				}
				if n > 0 {
					log.Printf("follower: replayed %d events (cursor %d, lag %d)", n, rep.Cursor(), rep.LagEvents())
				}
			}
		}()
		log.Printf("follower: replaying shipped WAL from %s (cursor %d); promote via POST /v1/admin/promote", followDir, rep.Cursor())
	}

	// Durability: open the WAL, recover past the checkpoint watermark, and
	// attach so every applied batch is logged at the serial apply point.
	var walLog *apan.WAL
	if *walDir != "" && rep == nil {
		walLog, err = apan.OpenWAL(apan.WALOptions{Dir: *walDir, Policy: policy, SyncEvery: *fsyncEvery})
		if err != nil {
			log.Fatal(err)
		}
		if *loadPath != "" {
			// Crash recovery: the checkpoint restored state up to its
			// watermark; re-apply every logged batch past it through the
			// full inference path. The WAL's open already truncated any
			// torn tail a mid-write crash left behind.
			replayed, err := model.RecoverWAL(walLog)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("wal: replayed %d events from %s (%d graph events now)", replayed, *walDir, model.GraphEvents())
		} else {
			// Fresh start: the training warm-up predates the log, so write
			// the base checkpoint recovery will replay from before any
			// batch is logged.
			wm, err := model.Checkpoint(*ckptPath)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("wal: base checkpoint %s written (watermark %d)", *ckptPath, wm)
		}
		if err := model.AttachWAL(walLog); err != nil {
			log.Fatal(err)
		}
		log.Printf("wal: logging applied batches to %s (fsync=%s)", *walDir, policy)
	}

	var trainer *apan.OnlineTrainer
	popts := []apan.PipelineOption{
		apan.WithQueueCap(*queueCap),
		apan.WithWorkers(*workers),
		apan.WithBatchWindow(*batchWindow),
	}
	if *tenants != "" || *tenantRate > 0 {
		cfgs, err := parseTenantSpecs(*tenants)
		if err != nil {
			log.Fatal(err)
		}
		if len(cfgs) > 0 {
			popts = append(popts, apan.WithTenants(cfgs...))
		}
		if *tenantRate > 0 {
			popts = append(popts, apan.WithTenantDefaults(apan.TenantConfig{Rate: *tenantRate}))
		}
		log.Printf("multi-tenant admission: %d registered tenants, walk-in rate %g ev/s", len(cfgs), *tenantRate)
	}
	if *evictMax > 0 {
		log.Printf("cold-state eviction: budget %d warm nodes", *evictMax)
	}
	if *trainOnline {
		trainer, err = apan.NewOnlineTrainer(model, apan.TrainerConfig{
			LR:        float32(*trainLR),
			StepEvery: *trainStep,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if *trainFrozen {
			trainer.Freeze()
		}
		trainer.Start()
		popts = append(popts, apan.WithOnlineTrainer(trainer))
		log.Printf("online training enabled (frozen=%v); control via POST /v1/admin/train/{freeze,resume}", *trainFrozen)
	}

	// Leader side of replication: stream the WAL directory to any follower
	// that connects, with lag heartbeats carrying the log's next index. (A
	// follower's parked listener is served by the replay loop above once
	// promotion makes this process the leader.)
	if shipLn != nil && rep == nil {
		go func() {
			if err := apan.ServeWALShip(shipLn, *walDir, walLog.NextIndex, *shipEvery, done); err != nil {
				log.Printf("wal ship server: %v", err)
			}
		}()
		log.Printf("wal: shipping segments to followers on %s (interval %v)", shipLn.Addr(), *shipEvery)
	}

	health := serve.NewHealth(3)
	sopts := apan.ServerOptions{
		FlushConcurrency: *flushConc,
		MaxNodes:         *maxNodes,
		Trainer:          trainer,
		Health:           health,
	}
	if rep != nil {
		sopts.Replication = rep
		sopts.MaxLagEvents = *maxLagEvent
	}
	pipe := apan.StartPipeline(model, popts...)
	srv := apan.NewServer(pipe, sopts)

	if *ckptEvery > 0 {
		// Periodic background checkpoints: Checkpoint is atomic (temp +
		// fsync + rename) and cuts on a batch boundary without taking the
		// store latch exclusively, so serving keeps scoring while the file
		// is written. With a WAL the returned watermark lets the log drop
		// segments the checkpoint has made redundant. Failures get bounded
		// retries with jittered backoff (a transiently full or slow disk
		// shouldn't cost a whole interval of replay debt); exhausting them
		// feeds the consecutive-failure count /v1/readyz degrades on.
		go func() {
			// Jitter from the process seed, not the clock: two processes
			// started with the same -seed retry on the same schedule, so
			// seeded runs (and their logs) are reproducible.
			rng := rand.New(rand.NewSource(*seed))
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
				}
				start := time.Now()
				var wm uint64
				var err error
				for attempt := 1; ; attempt++ {
					wm, err = model.Checkpoint(*ckptPath)
					if err == nil || attempt == 3 {
						break
					}
					backoff := time.Duration(attempt) * (250*time.Millisecond + time.Duration(rng.Int63n(int64(250*time.Millisecond))))
					log.Printf("checkpoint attempt %d: %v (retrying in %v)", attempt, err, backoff.Round(time.Millisecond))
					select {
					case <-done:
						return
					case <-time.After(backoff):
					}
				}
				if err != nil {
					fails := health.CheckpointFailed()
					log.Printf("checkpoint: %v (attempts exhausted; %d consecutive failures)", err, fails)
					continue
				}
				health.CheckpointSucceeded()
				log.Printf("checkpoint %s written in %v (param version %d, watermark %d graph events)",
					*ckptPath, time.Since(start).Round(time.Millisecond), model.ParamVersion(), wm)
				if walLog != nil {
					if removed, err := walLog.TruncateBefore(wm); err != nil {
						log.Printf("wal truncate: %v", err)
					} else if removed > 0 {
						log.Printf("wal: dropped %d segments behind watermark %d", removed, wm)
					}
				}
			}
		}()
		log.Printf("checkpointing to %s every %v", *ckptPath, *ckptEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	var handler http.Handler = srv
	if *pprofOn {
		// The API keeps its own mux; pprof rides alongside so profiling the
		// serving hot path (alloc/heap profiles should be near-flat after
		// warm-up — the workspaces pool) needs no second port.
		mux := http.NewServeMux()
		mux.Handle("/", srv)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled on /debug/pprof/")
	}
	hs := &http.Server{Handler: handler}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("serving v1 HTTP API on http://%s (db-latency=%v on async link)", ln.Addr(), *dbLatency)

	// shutdown is the one exit path, demo or signal: stop intake, drain the
	// propagation pipeline, stop the trainer, then seal durability — sync
	// the WAL, write a final checkpoint so the next start needs no replay,
	// and close the log.
	shutdown := func() {
		close(done)
		if shipLn != nil {
			shipLn.Close() // a parked follower listener; no-op once ServeWALShip owns it
		}
		hs.Close()
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := pipe.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if trainer != nil {
			trainer.Stop()
		}
		sealLog := walLog
		if rep != nil {
			// A promoted follower reopened the shipped directory as its own
			// log at takeover; seal that one. Unpromoted followers have no
			// attached log — their durability is the leader's.
			sealLog = rep.Log()
		}
		if sealLog != nil {
			model.DetachWAL()
			if err := sealLog.Sync(); err != nil {
				log.Printf("wal sync: %v", err)
			}
			wm, err := model.Checkpoint(*ckptPath)
			if err != nil {
				log.Printf("final checkpoint: %v", err)
			} else {
				log.Printf("final checkpoint %s written (watermark %d)", *ckptPath, wm)
			}
			if err := sealLog.Close(); err != nil {
				log.Printf("wal close: %v", err)
			}
		}
	}

	if *demo {
		runDemo("http://"+ln.Addr().String(), split.Test, *demoBatch, pipe)
		shutdown()
		return
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	stop() // restore default handling: a second signal kills immediately
	log.Printf("shutdown signal received; draining pipeline and sealing durability…")
	shutdown()
}

// runDemo replays the test stream through the HTTP batch endpoint and
// reports what the online decision system would observe. It speaks the
// wire types internal/serve exports, so client and server cannot drift.
// parseTenantSpecs parses the -tenants flag: comma-separated
// id[:weight[:rate[:lane]]] specs, e.g. "acme:3:500:0,trial:1:50:1".
// Omitted fields take the TenantConfig zero-value defaults (weight 1,
// unlimited rate, lane 0).
func parseTenantSpecs(s string) ([]apan.TenantConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var cfgs []apan.TenantConfig
	for _, spec := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("-tenants: empty tenant id in %q", spec)
		}
		tc := apan.TenantConfig{ID: parts[0]}
		var err error
		if len(parts) > 1 && parts[1] != "" {
			if tc.Weight, err = strconv.Atoi(parts[1]); err != nil {
				return nil, fmt.Errorf("-tenants: bad weight in %q: %v", spec, err)
			}
		}
		if len(parts) > 2 && parts[2] != "" {
			if tc.Rate, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, fmt.Errorf("-tenants: bad rate in %q: %v", spec, err)
			}
		}
		if len(parts) > 3 && parts[3] != "" {
			if tc.Lane, err = strconv.Atoi(parts[3]); err != nil {
				return nil, fmt.Errorf("-tenants: bad lane in %q: %v", spec, err)
			}
		}
		if len(parts) > 4 {
			return nil, fmt.Errorf("-tenants: too many fields in %q (want id[:weight[:rate[:lane]]])", spec)
		}
		cfgs = append(cfgs, tc)
	}
	return cfgs, nil
}

func runDemo(base string, events []apan.Event, batch int, pipe *apan.Pipeline) {
	n := len(events)
	if n > 2000 {
		n = 2000
	}
	if batch < 1 {
		batch = 1
	}
	client := &http.Client{Timeout: 30 * time.Second}

	start := time.Now()
	var worst time.Duration
	var scored int
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		req := serve.ScoreRequest{Events: make([]serve.EventJSON, hi-lo)}
		for i, ev := range events[lo:hi] {
			req.Events[i] = serve.EventJSON{Src: ev.Src, Dst: ev.Dst, Time: ev.Time, Feat: ev.Feat}
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := client.Post(base+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var sr serve.ScoreResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("server returned %d", resp.StatusCode)
		}
		scored += len(sr.Scores)
		if d := time.Duration(sr.SyncMicros) * time.Microsecond; d > worst {
			worst = d
		}
	}
	elapsed := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pipe.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Printf("demo: %d events in %v (%.0f ev/s) over POST /v1/score batches of %d\n",
		scored, elapsed.Round(time.Millisecond), float64(scored)/elapsed.Seconds(), batch)
	fmt.Printf("sync latency: mean %v p99 %v worst %v\n",
		st.Pipeline.SyncMean, st.Pipeline.SyncP99, worst)
	fmt.Printf("async propagation: mean %v, max queue depth %d\n",
		st.Pipeline.AsyncMean, st.Pipeline.MaxQueueDepth)
}
