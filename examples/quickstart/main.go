// Quickstart: train APAN on a small synthetic Wikipedia-style editing
// stream, evaluate temporal link prediction, and inspect an embedding.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"apan"
)

func main() {
	// A 2%-scale synthetic counterpart of the JODIE Wikipedia dataset:
	// bipartite user–page interactions with 172-dim edge features.
	ds := apan.Wikipedia(apan.DatasetConfig{Scale: 0.02, Seed: 42})
	fmt.Printf("dataset: %d nodes, %d events, %d-dim features\n",
		ds.NumNodes, len(ds.Events), ds.EdgeDim)

	model, err := apan.New(apan.Config{
		NumNodes: ds.NumNodes,
		EdgeDim:  ds.EdgeDim,
		// Everything else defaults to the paper's §4.4 configuration:
		// 10 mailbox slots, fan-out 10, k=2 hops, 2 heads, batch 200.
	})
	if err != nil {
		log.Fatal(err)
	}

	split := ds.Split(0.70, 0.15)
	ns := apan.NewNegSampler(ds.NumNodes)
	for epoch := 1; epoch <= 5; epoch++ {
		model.ResetRuntime() // each epoch replays the stream from scratch
		tr := model.TrainEpoch(split.Train, ns)
		val := model.EvalStream(split.Val, ns)
		fmt.Printf("epoch %d: loss %.4f, val AP %.4f\n", epoch, tr.Loss, val.AP)
	}

	// Final evaluation: rebuild streaming state, then score the held-out
	// future. EvalStream keeps updating mailboxes as it goes, exactly like
	// the deployed system would.
	model.ResetRuntime()
	model.EvalStream(split.Train, ns)
	model.EvalStream(split.Val, ns)
	test := model.EvalStream(split.Test, ns)
	fmt.Printf("test: accuracy %.4f, AP %.4f\n", test.Accuracy, test.AP)
	fmt.Printf("synchronous inference: %s\n", &test.SyncHist)

	// Temporal embeddings are a first-class output: ask for any node's
	// current representation without touching the stream state.
	lastT := ds.Events[len(ds.Events)-1].Time
	emb := model.Embed([]apan.NodeID{0, 1}, []float64{lastT, lastT})
	fmt.Printf("node 0 embedding (first 6 dims): %.3f\n", emb.Row(0)[:6])
}
