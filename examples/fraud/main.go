// Fraud detection: the paper's motivating Alipay scenario (§1). An APAN
// encoder is trained self-supervised on a transaction stream, a fraud
// decoder is fitted on labeled interactions from the training window, and
// the combined system is served through the v1 HTTP/JSON API over the
// asynchronous pipeline — scoring transactions in real time while a
// simulated remote graph database sits only on the propagation path.
//
//	go run ./examples/fraud
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"apan"
	"apan/internal/eval"
	"apan/internal/nn"
	"apan/internal/tensor"
	"apan/internal/tgraph"
)

func main() {
	// Synthetic transaction network with bursty fraud rings (~0.4% of
	// edges), 101-dim features, 14 days.
	ds := apan.Alipay(apan.DatasetConfig{Scale: 0.004, Seed: 7})
	var frauds int
	for _, e := range ds.Events {
		if e.Label == 1 {
			frauds++
		}
	}
	fmt.Printf("transactions: %d (%d fraudulent, %.2f%%)\n",
		len(ds.Events), frauds, 100*float64(frauds)/float64(len(ds.Events)))

	// The remote graph DB costs 300µs per neighbor query — but only the
	// asynchronous propagator talks to it.
	db := apan.NewGraphDB(apan.NewGraph(ds.NumNodes))
	db.Latency = apan.ConstantLatency(300 * time.Microsecond)

	model, err := apan.NewWithDB(apan.Config{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, Heads: 1, // 101 dims
		Seed: 7,
	}, db)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: self-supervised encoder training (10d-2d-2d split, §4.1).
	split := ds.Split(10.0/14, 2.0/14)
	ns := apan.NewNegSampler(ds.NumNodes)
	for epoch := 1; epoch <= 3; epoch++ {
		model.ResetRuntime()
		tr := model.TrainEpoch(split.Train, ns)
		fmt.Printf("encoder epoch %d: loss %.4f\n", epoch, tr.Loss)
	}

	// Phase 2: collect embeddings at labeled interactions and fit the fraud
	// decoder MLP([z_src ‖ e ‖ z_dst]) on the training window.
	type sample struct {
		x     []float32
		label bool
		t     float64
	}
	var samples []sample
	model.ResetRuntime()
	model.CollectStream(ds.Events, nil, func(ev *tgraph.Event, zsrc, zdst []float32) {
		x := make([]float32, 0, len(zsrc)+len(ev.Feat)+len(zdst))
		x = append(x, zsrc...)
		x = append(x, ev.Feat...)
		x = append(x, zdst...)
		samples = append(samples, sample{x: x, label: ev.Label == 1, t: ev.Time})
	})

	var trainPos, trainNeg []sample
	var testSet []sample
	for _, s := range samples {
		switch {
		case s.t > split.TrainEnd:
			testSet = append(testSet, s)
		case s.label:
			trainPos = append(trainPos, s)
		default:
			trainNeg = append(trainNeg, s)
		}
	}
	fmt.Printf("decoder training: %d fraud / %d clean; eval on %d\n",
		len(trainPos), len(trainNeg), len(testSet))

	rng := rand.New(rand.NewSource(7))
	inDim := len(samples[0].x)
	dec := nn.NewMLP(inDim, 80, 1, 0.1, rng)
	opt := nn.NewAdam(dec.Params(), 1e-3)
	for step := 0; step < 400; step++ {
		const half = 16
		x := tensor.New(2*half, inDim)
		targets := make([]float32, 2*half)
		for i := 0; i < half; i++ {
			copy(x.Row(i), trainPos[rng.Intn(len(trainPos))].x)
			targets[i] = 1
			copy(x.Row(half+i), trainNeg[rng.Intn(len(trainNeg))].x)
		}
		tp := nn.NewTrainingTape(rng)
		loss := tp.BCEWithLogits(dec.Forward(tp, tp.Input(x)), targets)
		tp.Backward(loss)
		opt.Step()
		opt.ZeroGrad()
	}

	scores := make([]float32, len(testSet))
	labels := make([]bool, len(testSet))
	for i, s := range testSet {
		x := tensor.FromSlice(1, inDim, s.x)
		tp := nn.NewTape()
		scores[i] = tensor.Sigmoid32(dec.Forward(tp, tp.Input(x)).Value().Data[0])
		labels[i] = s.label
	}
	fmt.Printf("fraud detection AUC on future window: %.4f\n", eval.ROCAUC(scores, labels))

	// Phase 3: serve the future window through the v1 HTTP API over the
	// asynchronous pipeline. The decision path never waits for the
	// 300µs-per-query graph DB.
	ctx := context.Background()
	model.ResetRuntime()
	db.Sleep = true // now the latency model really blocks the async worker
	model.EvalStream(split.Train, nil)
	pipe := apan.StartPipeline(model, apan.WithQueueCap(128))
	defer pipe.Shutdown(ctx)
	srv := apan.NewServer(pipe, apan.ServerOptions{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	served := split.Test
	if len(served) > 600 {
		served = served[:600]
	}
	for lo := 0; lo < len(served); lo += 50 {
		hi := lo + 50
		if hi > len(served) {
			hi = len(served)
		}
		body, err := json.Marshal(map[string]any{"events": served[lo:hi]})
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(hs.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("POST /v1/score: status %d", resp.StatusCode)
		}
	}
	if err := pipe.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	st := pipe.Stats()
	fmt.Printf("served %d batches over POST /v1/score: sync mean %v p99 %v | async mean %v | max queue %d\n",
		st.Processed, st.SyncMean, st.SyncP99, st.AsyncMean, st.MaxQueueDepth)
	fmt.Println("graph DB time was paid entirely off the decision path:",
		db.Stats().Simulated.Round(time.Millisecond))
}
