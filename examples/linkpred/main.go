// Link prediction shoot-out: APAN against TGN and JODIE on the same
// Reddit-style stream, reproducing the flavor of the paper's Table 2 at
// example scale — including the inference-latency gap of Figure 6.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"
	"time"

	"apan"
	"apan/internal/baselines"
	"apan/internal/bench"
)

func main() {
	ds := apan.Reddit(apan.DatasetConfig{Scale: 0.004, Seed: 11})
	fmt.Printf("reddit-style stream: %d nodes, %d events\n", ds.NumNodes, len(ds.Events))
	split := ds.Split(0.70, 0.15)

	o := bench.Options{
		Scale:     0.004,
		Seed:      11,
		Epochs:    4,
		BatchSize: 100,
		Fanout:    5,
		Slots:     5,
		Hidden:    48,
		// Every graph query costs half a millisecond, as it would against a
		// remote store. Only synchronous models pay it before answering.
		DBLatency: 500 * time.Microsecond,
	}

	fmt.Println("model         test-acc  test-AP   infer-ms/batch")
	for _, name := range []string{"JODIE", "TGN-1layer", "TGAT-1layer", "APAN-2layers"} {
		m, db, err := o.NewStreamModel(name, ds, 11)
		if err != nil {
			log.Fatal(err)
		}
		r := runOne(o, m, db, split, ds.NumNodes)
		fmt.Printf("%-13s %.4f    %.4f    %.3f\n", name, r.TestAcc/100, r.TestAP/100, r.InferMs)
	}
	fmt.Println("\nAPAN's inference cost excludes graph queries: they happen on the")
	fmt.Println("asynchronous link after the score is already returned (Fig. 2b).")
}

func runOne(o bench.Options, m baselines.StreamModel, db *apan.GraphDB, split *apan.Split, numNodes int) bench.RunMetrics {
	return o.TrainEval(m, db, split, numNodes)
}
