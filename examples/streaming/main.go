// Streaming robustness and interpretability: the §3.6 properties that set
// the asynchronous CTDG framework apart. This example (1) feeds APAN and a
// TGN baseline the same stream in-order and shuffled-within-windows and
// compares how much their scores drift — the mailbox's timestamp-sorted
// readout absorbs out-of-order arrival that RNN-memory models cannot — and
// (2) asks APAN which past interaction its attention relied on.
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"apan"
	"apan/internal/baselines"
	"apan/internal/gdb"
	"apan/internal/tensor"
)

func main() {
	ds := apan.Wikipedia(apan.DatasetConfig{Scale: 0.01, Seed: 3})
	split := ds.Split(0.70, 0.15)
	probe := split.Val[:200]

	// --- Part 1: out-of-order delivery ----------------------------------
	// In a distributed stream, events inside a small window arrive in any
	// order. APAN's mailbox sorts mails by timestamp at readout (§3.6);
	// TGN's GRU memory consumes events in arrival order.
	shuffled := append([]apan.Event(nil), split.Train...)
	shuffleWithinWindows(shuffled, 50, rand.New(rand.NewSource(9)))

	model, err := apan.New(apan.Config{NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	ns := apan.NewNegSampler(ds.NumNodes)
	for epoch := 0; epoch < 3; epoch++ {
		model.ResetRuntime()
		model.TrainEpoch(split.Train, ns)
	}
	apanDrift := drift(scoreAPAN(model, split.Train, probe), scoreAPAN(model, shuffled, probe))

	tgn := baselines.NewTGN(baselines.TGNConfig{
		NumNodes: ds.NumNodes, EdgeDim: ds.EdgeDim, BatchSize: 200, Seed: 3,
	}, gdb.New(apan.NewGraph(ds.NumNodes)))
	for epoch := 0; epoch < 3; epoch++ {
		tgn.ResetRuntime()
		tgn.TrainEpoch(split.Train, apan.NewNegSampler(ds.NumNodes))
	}
	tgnDrift := drift(scoreTGN(tgn, split.Train, probe), scoreTGN(tgn, shuffled, probe))

	// Both implementations here apply batch-level message dedup, so both
	// stay stable; APAN additionally guarantees *exact* invariance at the
	// mailbox level, demonstrated below.
	fmt.Printf("score drift after shuffling arrival order within 50-event windows\n")
	fmt.Printf("  APAN: mean |Δscore| = %.5f\n", apanDrift)
	fmt.Printf("  TGN:  mean |Δscore| = %.5f\n", tgnDrift)

	// Mailbox-level invariance (§3.6): delivering the same mails in any
	// order yields bit-identical embeddings, because readout sorts by
	// timestamp.
	a, _ := apan.New(apan.Config{NumNodes: 4, EdgeDim: ds.EdgeDim, Seed: 3})
	b, _ := apan.New(apan.Config{NumNodes: 4, EdgeDim: ds.EdgeDim, Seed: 3})
	m1, m2, m3 := mail(ds.EdgeDim, 1), mail(ds.EdgeDim, 2), mail(ds.EdgeDim, 3)
	a.Mailbox().Deliver(0, m1, 1)
	a.Mailbox().Deliver(0, m2, 2)
	a.Mailbox().Deliver(0, m3, 3)
	b.Mailbox().Deliver(0, m3, 3) // reversed arrival
	b.Mailbox().Deliver(0, m2, 2)
	b.Mailbox().Deliver(0, m1, 1)
	za := a.Embed([]apan.NodeID{0}, []float64{4})
	zb := b.Embed([]apan.NodeID{0}, []float64{4})
	identical := true
	for i := range za.Data {
		if za.Data[i] != zb.Data[i] {
			identical = false
			break
		}
	}
	fmt.Printf("mailbox invariance: reversed mail arrival gives identical embedding: %v\n", identical)

	// --- Part 2: interpretability over the serving API -------------------
	// Mails store the full interaction detail (z_i, e_ij, z_j), so attention
	// weights identify the historical interaction behind a prediction —
	// something models that only keep compressed memory cannot offer. Here
	// the question is asked the way an operator would in production: score
	// the live event through POST /v1/score, then GET /v1/explain/{node}.
	model.ResetRuntime()
	model.EvalStream(split.Train, nil)
	var target *apan.Event
	for i := range probe {
		if model.Mailbox().Len(probe[i].Src) >= 3 {
			target = &probe[i]
			break
		}
	}
	if target == nil {
		fmt.Println("\nno probe node with enough mail history")
		return
	}

	pipe := apan.StartPipeline(model)
	defer pipe.Shutdown(context.Background())
	srv := apan.NewServer(pipe, apan.ServerOptions{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	body, _ := json.Marshal(map[string]any{
		"src": target.Src, "dst": target.Dst, "time": target.Time, "feat": target.Feat,
	})
	resp, err := http.Post(hs.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		log.Fatalf("POST /v1/score: status %d: %s", resp.StatusCode, body)
	}
	var scored struct {
		Score float32 `json:"score"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scored); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(fmt.Sprintf("%s/v1/explain/%d", hs.URL, target.Src))
	if err != nil {
		log.Fatal(err)
	}
	var ex struct {
		Node        int32     `json:"node"`
		MailWeights []float32 `json:"mail_weights"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Println("\nno explanation available for the scored node")
		return
	}
	fmt.Printf("\nPOST /v1/score gave node %d's interaction score %.3f;"+
		" GET /v1/explain/%d attended over %d mails:\n",
		target.Src, scored.Score, target.Src, len(ex.MailWeights))
	best := 0
	for i, w := range ex.MailWeights {
		fmt.Printf("  mail %d (oldest-first): weight %.3f\n", i, w)
		if w > ex.MailWeights[best] {
			best = i
		}
	}
	fmt.Printf("=> the interaction behind mail %d dominated this embedding\n", best)
}

func scoreAPAN(m *apan.Model, warmup, probe []apan.Event) []float32 {
	m.ResetRuntime()
	m.EvalStream(warmup, nil)
	return m.InferBatch(probe).Scores
}

// scoreTGN captures embedding-similarity scores for the probe interactions.
// TGN has no side-effect-free serving path, so the deterministic
// CollectStream pathway stands in for it.
func scoreTGN(m *baselines.TGN, warmup, probe []apan.Event) []float32 {
	m.ResetRuntime()
	m.EvalStream(warmup, nil)
	out := make([]float32, 0, len(probe))
	m.CollectStream(probe, nil, func(_ *apan.Event, zsrc, zdst []float32) {
		var dot float32
		for i := range zsrc {
			dot += zsrc[i] * zdst[i]
		}
		out = append(out, tensor.Sigmoid32(dot))
	})
	return out
}

func mail(dim int, v float32) []float32 {
	m := make([]float32, dim)
	m[0] = v
	return m
}

func drift(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a))
}

func shuffleWithinWindows(evs []apan.Event, window int, rng *rand.Rand) {
	for lo := 0; lo < len(evs); lo += window {
		hi := lo + window
		if hi > len(evs) {
			hi = len(evs)
		}
		rng.Shuffle(hi-lo, func(i, j int) {
			evs[lo+i], evs[lo+j] = evs[lo+j], evs[lo+i]
		})
	}
}
